//! Chat-completion request/response types.

use serde::{Deserialize, Serialize};

use crate::models::ModelKind;

/// Message author role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum Role {
    /// System instruction.
    System,
    /// End-user message.
    User,
    /// Model output.
    Assistant,
}

/// One chat message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChatMessage {
    /// Author role.
    pub role: Role,
    /// Message text.
    pub content: String,
}

impl ChatMessage {
    /// A user message.
    #[must_use]
    pub fn user(content: impl Into<String>) -> Self {
        Self {
            role: Role::User,
            content: content.into(),
        }
    }

    /// A system message.
    #[must_use]
    pub fn system(content: impl Into<String>) -> Self {
        Self {
            role: Role::System,
            content: content.into(),
        }
    }
}

/// A chat-completion request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChatRequest {
    /// Target model.
    pub model: ModelKind,
    /// Conversation so far (the engine concatenates all message text).
    pub messages: Vec<ChatMessage>,
}

impl ChatRequest {
    /// A single-user-message request.
    #[must_use]
    pub fn user(model: ModelKind, content: impl Into<String>) -> Self {
        Self {
            model,
            messages: vec![ChatMessage::user(content)],
        }
    }

    /// Concatenated prompt text of all messages.
    #[must_use]
    pub fn full_text(&self) -> String {
        let mut s = String::new();
        for m in &self.messages {
            if !s.is_empty() {
                s.push('\n');
            }
            s.push_str(&m.content);
        }
        s
    }
}

/// Token accounting for one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Usage {
    /// Tokens in the prompt.
    pub prompt_tokens: u32,
    /// Tokens in the completion.
    pub completion_tokens: u32,
}

impl Usage {
    /// Total tokens.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.prompt_tokens + self.completion_tokens
    }
}

/// A chat-completion response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChatResponse {
    /// The model that answered.
    pub model: ModelKind,
    /// Completion text.
    pub content: String,
    /// Token usage.
    pub usage: Usage,
    /// Simulated end-to-end latency in milliseconds (virtual clock — no
    /// actual sleeping happens).
    pub latency_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_text_joins_messages() {
        let r = ChatRequest {
            model: ModelKind::Gpt4o,
            messages: vec![ChatMessage::system("be brief"), ChatMessage::user("hello")],
        };
        assert_eq!(r.full_text(), "be brief\nhello");
    }

    #[test]
    fn usage_total() {
        let u = Usage {
            prompt_tokens: 10,
            completion_tokens: 5,
        };
        assert_eq!(u.total(), 15);
    }
}

//! The paper's three prompt templates, verbatim, plus the parsers that
//! recover the embedded data from a raw prompt string.
//!
//! Keeping prompts as real strings (rather than structured RPC) preserves
//! the interface the paper actually uses — including its quirks, like
//! tips travelling as a Python-style list and POI attributes as JSON.

use serde_json::Value;

use crate::error::LlmError;

/// Distinctive instruction text of the summarization prompt (Section 3.1).
pub const SUMMARIZE_MARKER: &str = "You are a master of summarizing reviews";
/// Distinctive instruction text of the refinement prompt (Section 3.2).
pub const RERANK_MARKER: &str = "You are an assistant for location information sorting tasks";
/// Distinctive instruction text of the query-generation prompt (Section 4).
pub const QUERYGEN_MARKER: &str = "You are an expert in spatial keyword searching";

/// Renders a Python-style list of strings: `['a', 'b']`.
#[must_use]
pub fn python_list(items: &[String]) -> String {
    let mut s = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push('\'');
        s.push_str(&item.replace('\\', "\\\\").replace('\'', "\\'"));
        s.push('\'');
    }
    s.push(']');
    s
}

/// Parses a Python-style list of single-quoted strings.
#[must_use]
pub fn parse_python_list(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut chars = s.chars().peekable();
    // Find opening bracket.
    for c in chars.by_ref() {
        if c == '[' {
            break;
        }
    }
    let mut cur: Option<String> = None;
    while let Some(c) = chars.next() {
        match (&mut cur, c) {
            (None, '\'') => cur = Some(String::new()),
            (None, ']') => break,
            (None, _) => {}
            (Some(s), '\\') => {
                if let Some(next) = chars.next() {
                    s.push(next);
                }
            }
            (Some(_), '\'') => {
                out.push(cur.take().expect("inside string"));
            }
            (Some(s), c) => s.push(c),
        }
    }
    out
}

/// The tip-summarization prompt (paper Section 3.1), filled with the tips
/// to summarize.
#[must_use]
pub fn summarize_prompt(tips: &[String]) -> String {
    format!(
        "{SUMMARIZE_MARKER}. Now I have some reviews, they are in the form of lists in Python \
and split with commas. I would like you to help me make a summary. Here are some examples:\n\
list:['Love Sonic but orders are constantly wrong', 'Foods always been good. Shakes r delicious!']\n\
Summary: The feedback highlights a mix of experiences at Sonic. While there is love for the \
brand and appreciation for the quality of food and delicious shakes, there is also frustration \
over frequent inaccuracies in order fulfillment.\n\
list:['Great patio for people watching', 'Service was slow but friendly']\n\
Summary: Visitors enjoy the patio and find the staff friendly, though service can be slow.\n\
Now it is your turn: {}\nSummary:",
        python_list(tips)
    )
}

/// Extracts the tips list from a summarization prompt.
pub fn extract_tips(prompt: &str) -> Result<Vec<String>, LlmError> {
    let idx = prompt
        .rfind("Now it is your turn:")
        .ok_or_else(|| LlmError::MalformedPrompt {
            cause: "missing 'Now it is your turn:' section".to_owned(),
        })?;
    let tail = &prompt[idx..];
    let tips = parse_python_list(tail);
    if tips.is_empty() {
        return Err(LlmError::MalformedPrompt {
            cause: "empty or unparseable tips list".to_owned(),
        });
    }
    Ok(tips)
}

/// The refinement (re-ranking) prompt (paper Section 3.2), filled with
/// the candidate POIs (as a JSON array) and the user query.
#[must_use]
pub fn rerank_prompt(pois: &Value, query: &str) -> String {
    format!(
        "{RERANK_MARKER}. Below is the location information retrieved from the database, which \
will be given to you in JSON format. You are asked to filter and sort this information based on \
the question asked. You first need to determine whether the information is relevant to the \
question, and then sort all the relevant information. The ones that best match the question and \
help answer it have the highest priority. The format of your output must be a Python dictionary, \
where the key is the name of the location and the value is the reason why you chose this \
location and ranked it there. The location with the highest priority is placed higher, i.e., \
index is 0. Please note that there could be more than one result in the dictionary. If the \
information about a location could only partially match the question asked, you could also put \
it in the dictionary, but specify the advantages and disadvantages of this place in the value of \
the dictionary. If you could not complete the task or do not know the answer, just return the \
empty dictionary and don't refer to any additional knowledge.\n\
Information: {}\nQuery: {query}",
        serde_json::to_string(pois).unwrap_or_else(|_| "[]".to_owned())
    )
}

/// Extracts `(pois, query)` from a refinement prompt.
pub fn extract_rerank(prompt: &str) -> Result<(Vec<Value>, String), LlmError> {
    let info_idx = prompt
        .rfind("\nInformation: ")
        .ok_or_else(|| LlmError::MalformedPrompt {
            cause: "missing Information section".to_owned(),
        })?;
    let rest = &prompt[info_idx + "\nInformation: ".len()..];
    let query_idx = rest
        .rfind("\nQuery: ")
        .ok_or_else(|| LlmError::MalformedPrompt {
            cause: "missing Query section".to_owned(),
        })?;
    let json_part = &rest[..query_idx];
    let query = rest[query_idx + "\nQuery: ".len()..].trim().to_owned();
    let pois: Vec<Value> =
        serde_json::from_str(json_part.trim()).map_err(|e| LlmError::MalformedPrompt {
            cause: format!("bad POI JSON: {e}"),
        })?;
    Ok((pois, query))
}

/// The query-generation prompt (paper Section 4), filled with a POI
/// information block.
#[must_use]
pub fn querygen_prompt(info: &str) -> String {
    format!(
        "{QUERYGEN_MARKER} and I am now trying to perform spatial keyword searching using a \
large language model. In order to get a test set, I need you to help me write query questions \
based on the information I provide. In particular, I am asking to think of some questions that \
are difficult to answer with simple keyword matching, but are easier with the semantic \
capabilities of large language models, such as \"Find Japanese restaurants in Center City that \
offer a variety of sushi options\", where \"Japanese restaurants\" and \"sushi\" can be easily \
handled by keyword matching, while \"a variety of options\" may require semantic understanding. \
Also, please don't mention any location information in the query!\n\
Information: Pep Boys is located at Lafayette Road and primarily serves the category of \
Automotive, Tires, Oil Change Stations, Auto Parts & Supplies, Auto Repair. Customers often \
highlight: 'The reviews consistently praise the staff for being friendly, knowledgeable, and \
helpful.'\nQuestion: My car needs repair. Which service center is the most reliable?\n\
Now it is your turn.\nInformation: {info}\nQuestion:"
    )
}

/// Extracts the POI information block from a query-generation prompt.
pub fn extract_querygen(prompt: &str) -> Result<String, LlmError> {
    let idx = prompt
        .rfind("\nInformation: ")
        .ok_or_else(|| LlmError::MalformedPrompt {
            cause: "missing Information section".to_owned(),
        })?;
    let rest = &prompt[idx + "\nInformation: ".len()..];
    let end = rest.rfind("\nQuestion:").unwrap_or(rest.len());
    let info = rest[..end].trim();
    if info.is_empty() {
        return Err(LlmError::MalformedPrompt {
            cause: "empty information block".to_owned(),
        });
    }
    Ok(info.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn python_list_roundtrip() {
        let tips = vec![
            "Amazing ice cream! So creamy".to_owned(),
            "It's the best, really".to_owned(),
        ];
        let rendered = python_list(&tips);
        assert!(rendered.starts_with('['));
        let parsed = parse_python_list(&rendered);
        assert_eq!(parsed, tips);
    }

    #[test]
    fn python_list_escapes_quotes() {
        let tips = vec!["Mike's 'famous' cones".to_owned()];
        assert_eq!(parse_python_list(&python_list(&tips)), tips);
    }

    #[test]
    fn summarize_prompt_extracts_tips() {
        let tips = vec!["great coffee".to_owned(), "cozy spot".to_owned()];
        let p = summarize_prompt(&tips);
        assert!(p.contains(SUMMARIZE_MARKER));
        assert_eq!(extract_tips(&p).unwrap(), tips);
    }

    #[test]
    fn rerank_prompt_roundtrip() {
        let pois = json!([
            {"name": "Joe's Bar", "categories": "Bars, Nightlife"},
            {"name": "Cafe Uno", "categories": "Coffee & Tea"}
        ]);
        let p = rerank_prompt(&pois, "a bar to watch football");
        assert!(p.contains(RERANK_MARKER));
        let (parsed, q) = extract_rerank(&p).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0]["name"], "Joe's Bar");
        assert_eq!(q, "a bar to watch football");
    }

    #[test]
    fn rerank_query_with_newline_like_text() {
        let pois = json!([{"name": "X"}]);
        let p = rerank_prompt(&pois, "sushi with a variety of options?");
        let (_, q) = extract_rerank(&p).unwrap();
        assert_eq!(q, "sushi with a variety of options?");
    }

    #[test]
    fn querygen_prompt_roundtrip() {
        let info =
            "Mike's Ice Cream is located at 129 2nd Ave N and serves Ice Cream & Frozen Yogurt.";
        let p = querygen_prompt(info);
        assert!(p.contains(QUERYGEN_MARKER));
        assert_eq!(extract_querygen(&p).unwrap(), info);
    }

    #[test]
    fn extractors_reject_garbage() {
        assert!(extract_tips("no marker here").is_err());
        assert!(extract_rerank("nothing").is_err());
        assert!(extract_querygen("nothing").is_err());
    }
}

//! Model catalogue: fidelity, pricing, throughput.

use concepts::FidelityProfile;
use serde::{Deserialize, Serialize};

/// The models the paper uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// GPT-3.5 Turbo — tip summarization ("for its lower costs").
    Gpt35Turbo,
    /// GPT-4o — the default refinement model.
    Gpt4o,
    /// o1-mini — query generation and the SemaSK-O1 variant.
    O1Mini,
}

impl ModelKind {
    /// API-style model id string.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            ModelKind::Gpt35Turbo => "gpt-3.5-turbo",
            ModelKind::Gpt4o => "gpt-4o",
            ModelKind::O1Mini => "o1-mini",
        }
    }

    /// The model's semantic fidelity profile (drives task quality).
    #[must_use]
    pub fn fidelity(self) -> FidelityProfile {
        match self {
            ModelKind::Gpt35Turbo => FidelityProfile::gpt35_turbo(),
            ModelKind::Gpt4o => FidelityProfile::gpt4o(),
            ModelKind::O1Mini => FidelityProfile::o1_mini(),
        }
    }

    /// `(usd per 1k prompt tokens, usd per 1k completion tokens)` —
    /// ballpark public list prices at the time of the paper; only the
    /// *ratios* matter for the cost argument ("considering its higher
    /// cost, we default to GPT-4o").
    #[must_use]
    pub fn pricing_usd_per_1k(self) -> (f64, f64) {
        match self {
            ModelKind::Gpt35Turbo => (0.0005, 0.0015),
            ModelKind::Gpt4o => (0.0025, 0.0100),
            ModelKind::O1Mini => (0.0030, 0.0120),
        }
    }

    /// `(prompt tokens/sec ingestion, completion tokens/sec generation,
    /// fixed overhead ms)` for the latency simulation.
    #[must_use]
    pub fn throughput(self) -> (f64, f64, f64) {
        match self {
            ModelKind::Gpt35Turbo => (8000.0, 120.0, 250.0),
            ModelKind::Gpt4o => (6000.0, 80.0, 350.0),
            // o1-mini "thinks": slower effective generation.
            ModelKind::O1Mini => (6000.0, 45.0, 600.0),
        }
    }

    /// Simulated latency of a call in milliseconds.
    #[must_use]
    pub fn latency_ms(self, prompt_tokens: u32, completion_tokens: u32) -> f64 {
        let (in_tps, out_tps, overhead) = self.throughput();
        overhead
            + f64::from(prompt_tokens) / in_tps * 1000.0
            + f64::from(completion_tokens) / out_tps * 1000.0
    }

    /// Cost of a call in USD.
    #[must_use]
    pub fn cost_usd(self, prompt_tokens: u32, completion_tokens: u32) -> f64 {
        let (p, c) = self.pricing_usd_per_1k();
        f64::from(prompt_tokens) / 1000.0 * p + f64::from(completion_tokens) / 1000.0 * c
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refinement_call_latency_matches_paper_scale() {
        // A refinement prompt: ~10 POIs × ~150 tokens + instructions ≈
        // 1,800 prompt tokens, ~200 completion tokens. The paper reports
        // 2–3 s per query.
        let ms = ModelKind::Gpt4o.latency_ms(1800, 200);
        assert!((1_500.0..=4_000.0).contains(&ms), "got {ms}");
    }

    #[test]
    fn o1_is_slower_and_pricier_than_4o() {
        let a = ModelKind::Gpt4o.latency_ms(1500, 200);
        let b = ModelKind::O1Mini.latency_ms(1500, 200);
        assert!(b > a);
        assert!(ModelKind::O1Mini.cost_usd(1000, 1000) > ModelKind::Gpt4o.cost_usd(1000, 1000));
    }

    #[test]
    fn gpt35_is_cheapest() {
        let c35 = ModelKind::Gpt35Turbo.cost_usd(1000, 100);
        let c4o = ModelKind::Gpt4o.cost_usd(1000, 100);
        assert!(c35 < c4o);
    }

    #[test]
    fn ids_are_api_style() {
        assert_eq!(ModelKind::Gpt4o.id(), "gpt-4o");
        assert_eq!(ModelKind::Gpt4o.to_string(), "gpt-4o");
    }
}

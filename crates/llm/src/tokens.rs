//! Approximate token counting.
//!
//! A faithful BPE tokenizer is out of scope (and unnecessary: the paper's
//! token statistics are themselves approximate). The standard engineering
//! approximation for GPT-family tokenizers is ~4 characters per token for
//! English prose; we refine it slightly by never counting fewer tokens
//! than whitespace-separated words × 0.75, which handles short keyword-y
//! strings better.

/// Approximate number of tokens in `text`.
#[must_use]
pub fn approx_tokens(text: &str) -> u32 {
    if text.is_empty() {
        return 0;
    }
    let chars = text.chars().count() as f64;
    let words = text.split_whitespace().count() as f64;
    let by_chars = chars / 4.0;
    let by_words = words * 0.75;
    by_chars.max(by_words).ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(approx_tokens(""), 0);
    }

    #[test]
    fn prose_is_roughly_chars_over_four() {
        let text = "The feedback highlights a mix of experiences at Sonic.";
        let t = approx_tokens(text);
        assert!((10..=20).contains(&t), "got {t}");
    }

    #[test]
    fn monotone_in_length() {
        let a = approx_tokens("short text");
        let b = approx_tokens("short text that keeps going with many more words added");
        assert!(b > a);
    }

    #[test]
    fn tip_scale_sanity() {
        // The paper: ~147 tokens across ~11 tips → ~13 tokens/tip, i.e. a
        // one-sentence review.
        let tip = "Amazing ice cream! So creamy and the staff were lovely.";
        let t = approx_tokens(tip);
        assert!((10..=20).contains(&t), "got {t}");
    }
}

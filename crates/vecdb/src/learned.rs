//! A PGM-style learned index over point ids, replacing the hot-path
//! `HashMap<PointId, usize>` id → offset map.
//!
//! The id space a collection actually sees is far from adversarial:
//! ids arrive from dataset generators and WAL replays as dense,
//! near-monotone integers. A learned index exploits that shape. The
//! base layer keeps `(id, offset)` pairs sorted by id together with a
//! set of piecewise-linear segments built by the classic streaming
//! ε-bounded construction: each segment guarantees that the linear
//! prediction `pos ≈ first_pos + slope · (id − first_id)` lands within
//! `EPSILON` slots of the true position, so a lookup is a binary search
//! over segments (few, cache-resident) plus a binary search inside a
//! `2ε + 1` window — O(log ε) probes in a few cached lines, versus a
//! hash, a probe sequence, and a possible cache miss per `HashMap`
//! lookup. Memory drops from ~21 bytes/entry (SwissTable at 7/8 load
//! with 16-byte KV) to 12 bytes/entry plus a handful of segments.
//!
//! Mutations never touch the base layer in place: inserts land in a
//! small overlay map, deletions in a tombstone set, and when the
//! overlay outgrows a fraction of the base the whole index rebuilds
//! (O(n), amortized over the growth that caused it). Every lookup that
//! the predicted window somehow misses falls back to an exact binary
//! search over the base keys, so answers never depend on the learned
//! model being right — it is an accelerator, not an oracle.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::PointId;

/// Maximum slots the linear prediction may be off by. 64 keeps the
/// correction window (two cache lines of keys) cheap while letting
/// segments span thousands of near-linear ids.
const EPSILON: usize = 64;

/// Overlay size that triggers a rebuild, as the denominator of a
/// fraction of the base (base/4), floored at this many entries so tiny
/// indexes don't rebuild on every insert.
const MIN_REBUILD: usize = 1024;

/// One ε-bounded linear segment: predicts positions for keys in
/// `[first_key, next segment's first_key)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Segment {
    first_key: u64,
    first_pos: u64,
    slope: f64,
}

/// Learned id → offset index with exact-search fallback. Drop-in for
/// the collection's former `HashMap<PointId, usize>`: same observable
/// answers for `get` / `insert` / `remove` / `contains_key`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LearnedIdIndex {
    /// Base keys, sorted ascending, deduplicated.
    keys: Vec<u64>,
    /// Offset for each base key (parallel to `keys`).
    vals: Vec<u32>,
    /// ε-bounded segments over `keys` positions.
    segments: Vec<Segment>,
    /// Out-of-order inserts since the last rebuild.
    overlay: HashMap<PointId, u32>,
    /// Base keys deleted since the last rebuild (value unused; a map
    /// because the vendored serde lacks a `HashSet` impl).
    tombstones: HashMap<PointId, u8>,
}

impl Default for LearnedIdIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl LearnedIdIndex {
    /// An empty index.
    #[must_use]
    pub fn new() -> Self {
        Self {
            keys: Vec::new(),
            vals: Vec::new(),
            segments: Vec::new(),
            overlay: HashMap::new(),
            tombstones: HashMap::new(),
        }
    }

    /// Live entries (base minus tombstones plus overlay).
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len() - self.tombstones.len() + self.overlay.len()
    }

    /// Whether no live entry exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Offset for `key`, or `None`. Overlay and tombstones take
    /// precedence over the learned base layer.
    #[must_use]
    pub fn get(&self, key: PointId) -> Option<usize> {
        if let Some(&v) = self.overlay.get(&key) {
            return Some(v as usize);
        }
        if self.tombstones.contains_key(&key) {
            return None;
        }
        self.base_get(key).map(|i| self.vals[i] as usize)
    }

    /// Whether `key` has a live entry.
    #[must_use]
    pub fn contains_key(&self, key: PointId) -> bool {
        self.get(key).is_some()
    }

    /// Inserts or replaces `key → offset`.
    ///
    /// Invariant maintained: a live key is represented either by an
    /// un-tombstoned base entry with no overlay entry, or by an overlay
    /// entry with any base copy tombstoned — so
    /// `len = base − tombstones + overlay` counts each key once.
    pub fn insert(&mut self, key: PointId, offset: usize) {
        let offset = u32::try_from(offset).expect("collection offsets fit u32");
        match self.base_get(key) {
            Some(i) if self.vals[i] == offset => {
                // Base already answers correctly; make it canonical.
                self.overlay.remove(&key);
                self.tombstones.remove(&key);
            }
            Some(_) => {
                // Shadow the stale base value.
                self.overlay.insert(key, offset);
                self.tombstones.insert(key, 0);
            }
            None => {
                self.overlay.insert(key, offset);
                self.tombstones.remove(&key);
            }
        }
        self.maybe_rebuild();
    }

    /// Removes `key`, returning its offset if it was present.
    pub fn remove(&mut self, key: PointId) -> Option<usize> {
        if let Some(v) = self.overlay.remove(&key) {
            // The key may *also* exist in the base (overlay shadowed
            // it); tombstone the base copy so it doesn't resurrect.
            if self.base_get(key).is_some() {
                self.tombstones.insert(key, 0);
            }
            return Some(v as usize);
        }
        if self.tombstones.contains_key(&key) {
            return None;
        }
        if let Some(i) = self.base_get(key) {
            self.tombstones.insert(key, 0);
            return Some(self.vals[i] as usize);
        }
        None
    }

    /// Heap bytes of the index: base arrays, segments, and the overlay
    /// maps at a SwissTable-like 21 bytes/entry estimate.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.keys.len() * (8 + 4)
            + self.segments.len() * std::mem::size_of::<Segment>()
            + (self.overlay.len() + self.tombstones.len()) * 21
    }

    /// Number of linear segments in the base layer (diagnostic).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Exact position of `key` in the base arrays, if present.
    ///
    /// Fast path: locate the segment, predict, correct within
    /// `±EPSILON`. The full binary search fallback keeps correctness
    /// independent of the model: a window miss (impossible if the
    /// construction invariant holds, but cheap to insure against)
    /// degrades to O(log n), never to a wrong answer.
    fn base_get(&self, key: u64) -> Option<usize> {
        if self.keys.is_empty() {
            return None;
        }
        let seg_idx = self.segments.partition_point(|s| s.first_key <= key);
        if seg_idx == 0 {
            return None; // key precedes every base key
        }
        let seg = &self.segments[seg_idx - 1];
        let predicted = seg.first_pos as f64 + seg.slope * (key - seg.first_key) as f64;
        let predicted = predicted.max(0.0).min((self.keys.len() - 1) as f64) as usize;
        let lo = predicted.saturating_sub(EPSILON);
        let hi = (predicted + EPSILON + 1).min(self.keys.len());
        if self.keys[lo] <= key && key <= self.keys[hi - 1] {
            match self.keys[lo..hi].binary_search(&key) {
                Ok(i) => Some(lo + i),
                Err(_) => None,
            }
        } else {
            // Model miss: exact fallback.
            self.keys.binary_search(&key).ok()
        }
    }

    fn maybe_rebuild(&mut self) {
        let threshold = MIN_REBUILD.max(self.keys.len() / 4);
        if self.overlay.len() + self.tombstones.len() > threshold {
            self.rebuild();
        }
    }

    /// Merges overlay and tombstones into a fresh sorted base and
    /// refits the segments.
    fn rebuild(&mut self) {
        let mut pairs: Vec<(u64, u32)> = Vec::with_capacity(self.len());
        for (i, &k) in self.keys.iter().enumerate() {
            if !self.tombstones.contains_key(&k) && !self.overlay.contains_key(&k) {
                pairs.push((k, self.vals[i]));
            }
        }
        pairs.extend(self.overlay.iter().map(|(&k, &v)| (k, v)));
        pairs.sort_unstable_by_key(|&(k, _)| k);
        self.keys = pairs.iter().map(|&(k, _)| k).collect();
        self.vals = pairs.iter().map(|&(_, v)| v).collect();
        self.overlay.clear();
        self.tombstones.clear();
        self.segments = Self::fit_segments(&self.keys);
    }

    /// Streaming ε-bounded piecewise-linear fit (the PGM construction):
    /// grow a segment while some slope keeps every covered key's
    /// prediction within `EPSILON` of its true position; the feasible
    /// slope set is an interval that only narrows, so each key is an
    /// O(1) intersection test.
    fn fit_segments(keys: &[u64]) -> Vec<Segment> {
        let mut segments = Vec::new();
        if keys.is_empty() {
            return segments;
        }
        let eps = EPSILON as f64;
        let mut start = 0usize; // segment anchor position
        let (mut lo, mut hi) = (0.0f64, f64::INFINITY);
        for i in start + 1..keys.len() {
            let dx = (keys[i] - keys[start]) as f64; // > 0: keys strictly increase
            let dy = (i - start) as f64;
            let (cand_lo, cand_hi) = ((dy - eps) / dx, (dy + eps) / dx);
            let (new_lo, new_hi) = (lo.max(cand_lo), hi.min(cand_hi));
            if new_lo <= new_hi {
                (lo, hi) = (new_lo, new_hi);
            } else {
                segments.push(Segment {
                    first_key: keys[start],
                    first_pos: start as u64,
                    slope: midpoint(lo, hi),
                });
                start = i;
                (lo, hi) = (0.0, f64::INFINITY);
            }
        }
        segments.push(Segment {
            first_key: keys[start],
            first_pos: start as u64,
            slope: midpoint(lo, hi),
        });
        segments
    }
}

/// Midpoint of a feasible slope interval; a one-key segment has the
/// unconstrained interval `[0, ∞)`, where any slope predicts within ε
/// for the only covered key — use 0.
fn midpoint(lo: f64, hi: f64) -> f64 {
    if hi.is_finite() {
        (lo + hi) / 2.0
    } else {
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_index() {
        let idx = LearnedIdIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.get(0), None);
        assert_eq!(idx.get(u64::MAX), None);
    }

    #[test]
    fn dense_sequential_ids() {
        let mut idx = LearnedIdIndex::new();
        for i in 0..10_000u64 {
            idx.insert(i, i as usize * 3);
        }
        assert_eq!(idx.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(idx.get(i), Some(i as usize * 3), "key {i}");
        }
        assert_eq!(idx.get(10_000), None);
        // Dense ids after rebuild collapse to very few segments.
        assert!(
            idx.segment_count() <= 4,
            "dense ids should need few segments, got {}",
            idx.segment_count()
        );
    }

    #[test]
    fn sparse_and_clustered_ids() {
        let mut idx = LearnedIdIndex::new();
        let keys: Vec<u64> = (0..5_000u64)
            .map(|i| i * 17 + (i % 7) * 1000 + if i > 2500 { 1 << 40 } else { 0 })
            .collect();
        for (off, &k) in keys.iter().enumerate() {
            idx.insert(k, off);
        }
        for (off, &k) in keys.iter().enumerate() {
            assert_eq!(idx.get(k), Some(off));
        }
        assert_eq!(idx.get(3), None);
        assert_eq!(idx.get((1 << 40) + 3), None);
    }

    #[test]
    fn remove_and_reinsert() {
        let mut idx = LearnedIdIndex::new();
        for i in 0..3_000u64 {
            idx.insert(i, i as usize);
        }
        // Delete every third key (some in base, some in overlay).
        for i in (0..3_000u64).step_by(3) {
            assert_eq!(idx.remove(i), Some(i as usize), "remove {i}");
            assert_eq!(idx.remove(i), None, "double remove {i}");
        }
        for i in 0..3_000u64 {
            if i % 3 == 0 {
                assert_eq!(idx.get(i), None);
            } else {
                assert_eq!(idx.get(i), Some(i as usize));
            }
        }
        // Re-insert deleted keys at new offsets.
        for i in (0..3_000u64).step_by(3) {
            idx.insert(i, i as usize + 100_000);
        }
        for i in (0..3_000u64).step_by(3) {
            assert_eq!(idx.get(i), Some(i as usize + 100_000));
        }
        assert_eq!(idx.len(), 3_000);
    }

    #[test]
    fn overwrite_updates_value() {
        let mut idx = LearnedIdIndex::new();
        for i in 0..2_000u64 {
            idx.insert(i, 1);
        }
        for i in 0..2_000u64 {
            idx.insert(i, 2);
        }
        for i in 0..2_000u64 {
            assert_eq!(idx.get(i), Some(2));
        }
        assert_eq!(idx.len(), 2_000);
    }

    #[test]
    fn survives_serde_round_trip() {
        let mut idx = LearnedIdIndex::new();
        for i in 0..2_500u64 {
            idx.insert(i * 5, i as usize);
        }
        idx.remove(10);
        let json = serde_json::to_string(&idx).unwrap();
        let back: LearnedIdIndex = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), idx.len());
        for i in 0..2_500u64 {
            assert_eq!(back.get(i * 5), idx.get(i * 5));
        }
    }

    #[test]
    fn memory_beats_hashmap_estimate() {
        let mut idx = LearnedIdIndex::new();
        for i in 0..100_000u64 {
            idx.insert(i, i as usize);
        }
        // Force the overlay flat so the comparison is about the base
        // layout, matching a long-lived collection.
        idx.rebuild();
        let hashmap_estimate = 100_000 * 21; // SwissTable (u64, usize) at 7/8 load
        assert!(
            idx.memory_bytes() < hashmap_estimate * 3 / 4,
            "learned {} vs hashmap {}",
            idx.memory_bytes(),
            hashmap_estimate
        );
    }
}

//! Distance metrics, plus the norm-cached and batched scoring kernels
//! the hot paths build on.
//!
//! Collection data is immutable once inserted, so the L2 norm of every
//! stored vector is known at insert time. [`inv_norm`] computes the
//! cached inverse norm; [`Distance::distance_normed`] consumes it, which
//! for [`Distance::Cosine`] turns every comparison into a single fused
//! dot product (no per-comparison `sqrt`, no re-summing the stored
//! vector's squares). [`Distance::score_batch`] scores one stored vector
//! against M query vectors in a single pass — the stored vector is
//! streamed through cache once however large the batch is, and the
//! per-metric inner loops are simple enough for the compiler to
//! auto-vectorize.
//!
//! Two unroll widths are provided: the original 4-query interleave and
//! an 8-wide explicit unroll with a software-prefetch sweep over the
//! stored vector. Which one a machine prefers depends on its SIMD
//! register file (16 × 128-bit NEON vs 32 × 512-bit AVX-512), so the
//! width is chosen once per process by [`batch_kernel_width`] — a
//! timing micro-probe using the same warm-up + min-over-reps idiom as
//! the cost model's `Coefficients::fit`. Every lane of either kernel
//! accumulates in plain element order, so results stay **bit-identical**
//! to [`Distance::distance_normed`] regardless of the chosen width.

use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Inverse L2 norm of a vector (`1 / ‖v‖`), the quantity cached per
/// stored point so cosine scoring needs only a dot product. Returns
/// `0.0` for the zero vector, which makes the fused cosine distance
/// degrade to the conventional "zero vector is maximally far" answer.
#[must_use]
pub fn inv_norm(v: &[f32]) -> f32 {
    let mut n = 0.0f32;
    for &x in v {
        n += x * x;
    }
    if n == 0.0 {
        0.0
    } else {
        1.0 / n.sqrt()
    }
}

/// Software-prefetches the first cache lines of `v` into L1, for use
/// just before scoring the *next* stored vector while the current one
/// is still being processed. No-op on targets without a stable prefetch
/// intrinsic; prefetching is a pure hint either way (never faults).
#[inline]
pub fn prefetch_slice(v: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        let ptr = v.as_ptr().cast::<i8>();
        _mm_prefetch(ptr, _MM_HINT_T0);
        if v.len() > 16 {
            _mm_prefetch(ptr.add(64), _MM_HINT_T0);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = v;
    }
}

/// Prefetch 64 elements (4 cache lines) ahead of position `j` in
/// `stored`, issued every 64th element of the 8-wide sweep.
#[inline]
fn prefetch_ahead(stored: &[f32], j: usize) {
    #[cfg(target_arch = "x86_64")]
    if j & 63 == 0 && j + 64 < stored.len() {
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(stored.as_ptr().add(j + 64).cast::<i8>(), _MM_HINT_T0);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (stored, j);
    }
}

/// Four independent dot-product chains over one shared stored vector.
/// Each chain accumulates in the same order as the scalar loop in
/// [`Distance::distance_normed`].
#[inline]
fn dot4(q0: &[f32], q1: &[f32], q2: &[f32], q3: &[f32], stored: &[f32]) -> [f32; 4] {
    let n = stored.len();
    let (q0, q1, q2, q3) = (&q0[..n], &q1[..n], &q2[..n], &q3[..n]);
    let (mut d0, mut d1, mut d2, mut d3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (j, &s) in stored.iter().enumerate() {
        d0 += q0[j] * s;
        d1 += q1[j] * s;
        d2 += q2[j] * s;
        d3 += q3[j] * s;
    }
    [d0, d1, d2, d3]
}

/// Eight independent dot-product chains with a prefetch sweep over the
/// stored vector. `q` must hold at least 8 slices; per-lane accumulation
/// order matches the scalar loop exactly.
#[inline]
fn dot8(q: &[&[f32]], stored: &[f32]) -> [f32; 8] {
    let n = stored.len();
    let (q0, q1, q2, q3) = (&q[0][..n], &q[1][..n], &q[2][..n], &q[3][..n]);
    let (q4, q5, q6, q7) = (&q[4][..n], &q[5][..n], &q[6][..n], &q[7][..n]);
    let (mut d0, mut d1, mut d2, mut d3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let (mut d4, mut d5, mut d6, mut d7) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (j, &s) in stored.iter().enumerate() {
        prefetch_ahead(stored, j);
        d0 += q0[j] * s;
        d1 += q1[j] * s;
        d2 += q2[j] * s;
        d3 += q3[j] * s;
        d4 += q4[j] * s;
        d5 += q5[j] * s;
        d6 += q6[j] * s;
        d7 += q7[j] * s;
    }
    [d0, d1, d2, d3, d4, d5, d6, d7]
}

#[inline]
fn dot1(q: &[f32], stored: &[f32]) -> f32 {
    let mut dot = 0.0f32;
    for (x, y) in q.iter().zip(stored) {
        dot += x * y;
    }
    dot
}

/// Four independent squared-distance chains, same layout as [`dot4`].
#[inline]
fn euclid4(q0: &[f32], q1: &[f32], q2: &[f32], q3: &[f32], stored: &[f32]) -> [f32; 4] {
    let n = stored.len();
    let (q0, q1, q2, q3) = (&q0[..n], &q1[..n], &q2[..n], &q3[..n]);
    let (mut d0, mut d1, mut d2, mut d3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (j, &s) in stored.iter().enumerate() {
        let (e0, e1, e2, e3) = (q0[j] - s, q1[j] - s, q2[j] - s, q3[j] - s);
        d0 += e0 * e0;
        d1 += e1 * e1;
        d2 += e2 * e2;
        d3 += e3 * e3;
    }
    [d0, d1, d2, d3]
}

/// Eight independent squared-distance chains, same layout as [`dot8`].
#[inline]
fn euclid8(q: &[&[f32]], stored: &[f32]) -> [f32; 8] {
    let n = stored.len();
    let (q0, q1, q2, q3) = (&q[0][..n], &q[1][..n], &q[2][..n], &q[3][..n]);
    let (q4, q5, q6, q7) = (&q[4][..n], &q[5][..n], &q[6][..n], &q[7][..n]);
    let (mut d0, mut d1, mut d2, mut d3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let (mut d4, mut d5, mut d6, mut d7) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (j, &s) in stored.iter().enumerate() {
        prefetch_ahead(stored, j);
        let (e0, e1, e2, e3) = (q0[j] - s, q1[j] - s, q2[j] - s, q3[j] - s);
        let (e4, e5, e6, e7) = (q4[j] - s, q5[j] - s, q6[j] - s, q7[j] - s);
        d0 += e0 * e0;
        d1 += e1 * e1;
        d2 += e2 * e2;
        d3 += e3 * e3;
        d4 += e4 * e4;
        d5 += e5 * e5;
        d6 += e6 * e6;
        d7 += e7 * e7;
    }
    [d0, d1, d2, d3, d4, d5, d6, d7]
}

/// Deterministic pseudo-random probe vector (hash-mix, no RNG state).
fn probe_vec(seed: u64, dim: usize) -> Vec<f32> {
    (0..dim)
        .map(|i| {
            let h = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(i as u64)
                .wrapping_mul(0xff51_afd7_ed55_8ccd);
            ((h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
        })
        .collect()
}

/// Times the 4-wide vs the 8-wide dot kernel on a synthetic workload
/// shaped like the hot path and returns the winning width. Warm-up rep
/// plus min-over-reps, the same noise-rejection idiom as
/// `Coefficients::fit`'s probe timing.
fn probe_kernel_width() -> usize {
    const DIM: usize = 96;
    const STORED: usize = 128;
    const REPS: usize = 4; // rep 0 is warm-up
    let vectors: Vec<Vec<f32>> = (0..STORED + 8).map(|s| probe_vec(s as u64, DIM)).collect();
    let queries: Vec<&[f32]> = vectors[STORED..].iter().map(Vec::as_slice).collect();

    let time = |eight_wide: bool| -> u128 {
        let mut best = u128::MAX;
        for rep in 0..REPS {
            let start = std::time::Instant::now();
            let mut sink = 0.0f32;
            for stored in &vectors[..STORED] {
                let sums: f32 = if eight_wide {
                    dot8(&queries, stored).iter().sum()
                } else {
                    let a: f32 = dot4(queries[0], queries[1], queries[2], queries[3], stored)
                        .iter()
                        .sum();
                    let b: f32 = dot4(queries[4], queries[5], queries[6], queries[7], stored)
                        .iter()
                        .sum();
                    a + b
                };
                sink += sums;
            }
            let elapsed = start.elapsed().as_nanos();
            std::hint::black_box(sink);
            if rep > 0 && elapsed < best {
                best = elapsed;
            }
        }
        best
    };

    if time(true) < time(false) {
        8
    } else {
        4
    }
}

/// Widest unroll [`Distance::score_batch`] leads with: 8 when the
/// 8-wide explicit unroll + prefetch sweep beats the 4-wide interleave
/// on this machine (register-rich SIMD targets), 4 otherwise. Chosen
/// once per process by a micro-probe on first use; either choice
/// produces bit-identical scores, so this only affects speed.
#[must_use]
pub fn batch_kernel_width() -> usize {
    static WIDTH: OnceLock<usize> = OnceLock::new();
    *WIDTH.get_or_init(probe_kernel_width)
}

/// Supported vector distance metrics (Qdrant's set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Distance {
    /// Cosine distance `1 - cos(a, b)`. The paper's setting (OpenAI
    /// embeddings are compared by cosine).
    #[default]
    Cosine,
    /// Negative dot product (for already-normalized vectors this equals
    /// cosine up to an affine transform).
    Dot,
    /// Squared Euclidean distance.
    Euclid,
}

impl Distance {
    /// Distance between two vectors; **lower is closer** for every
    /// metric.
    #[must_use]
    pub fn distance(self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Distance::Cosine => {
                let (mut dot, mut na, mut nb) = (0.0f32, 0.0f32, 0.0f32);
                // Chunked loop: lets the compiler vectorize.
                for (x, y) in a.iter().zip(b) {
                    dot += x * y;
                    na += x * x;
                    nb += y * y;
                }
                let denom = (na * nb).sqrt();
                if denom == 0.0 {
                    1.0
                } else {
                    1.0 - dot / denom
                }
            }
            Distance::Dot => {
                let mut dot = 0.0f32;
                for (x, y) in a.iter().zip(b) {
                    dot += x * y;
                }
                -dot
            }
            Distance::Euclid => {
                let mut s = 0.0f32;
                for (x, y) in a.iter().zip(b) {
                    let d = x - y;
                    s += d * d;
                }
                s
            }
        }
    }

    /// Distance between two vectors with both inverse norms already
    /// known (**lower is closer**). For [`Distance::Cosine`] this is the
    /// norm-cached fast path: one fused dot product, `1 - dot·inv_a·inv_b`.
    /// The other metrics ignore the norms and match
    /// [`Distance::distance`] exactly.
    ///
    /// Passing `inv_norm(a)` / `inv_norm(b)` reproduces
    /// [`Distance::distance`] up to floating-point rounding of the
    /// `1/sqrt` factorization.
    #[must_use]
    pub fn distance_normed(self, a: &[f32], inv_a: f32, b: &[f32], inv_b: f32) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Distance::Cosine => {
                if inv_a == 0.0 || inv_b == 0.0 {
                    return 1.0;
                }
                let mut dot = 0.0f32;
                for (x, y) in a.iter().zip(b) {
                    dot += x * y;
                }
                1.0 - dot * inv_a * inv_b
            }
            Distance::Dot | Distance::Euclid => self.distance(a, b),
        }
    }

    /// Scores one stored vector against `queries.len()` query vectors in
    /// a single pass, writing one distance per query into `out`
    /// (**lower is closer**, same scale as [`Distance::distance_normed`]).
    ///
    /// This is the batched hot-path kernel. Queries are processed eight
    /// or four at a time (leading width per [`batch_kernel_width`]'s
    /// micro-probe): the accumulator chains are independent, so the CPU
    /// overlaps their floating-point latency instead of serializing one
    /// add chain per dot product, and each element of `stored` is loaded
    /// once per chunk of queries. Each query's own accumulation order is
    /// unchanged, so every lane is **bit-identical** to
    /// [`Distance::distance_normed`] on that query, whichever width runs.
    ///
    /// `query_inv_norms[m]` must be `inv_norm(queries[m])` and
    /// `stored_inv` must be `inv_norm(stored)`; both are ignored by the
    /// non-cosine metrics.
    ///
    /// # Panics
    /// If `out` or `query_inv_norms` are shorter than `queries`.
    pub fn score_batch(
        self,
        queries: &[&[f32]],
        query_inv_norms: &[f32],
        stored: &[f32],
        stored_inv: f32,
        out: &mut [f32],
    ) {
        assert!(out.len() >= queries.len());
        assert!(query_inv_norms.len() >= queries.len());
        let wide8 = batch_kernel_width() >= 8;

        match self {
            Distance::Cosine => {
                let finish = |m: usize, dot: f32| {
                    let inv_q = query_inv_norms[m];
                    if inv_q == 0.0 || stored_inv == 0.0 {
                        1.0
                    } else {
                        1.0 - dot * inv_q * stored_inv
                    }
                };
                let mut m = 0;
                if wide8 {
                    while m + 8 <= queries.len() {
                        debug_assert_eq!(queries[m].len(), stored.len());
                        let d = dot8(&queries[m..m + 8], stored);
                        for (lane, &dot) in d.iter().enumerate() {
                            out[m + lane] = finish(m + lane, dot);
                        }
                        m += 8;
                    }
                }
                while m + 4 <= queries.len() {
                    debug_assert_eq!(queries[m].len(), stored.len());
                    let d = dot4(
                        queries[m],
                        queries[m + 1],
                        queries[m + 2],
                        queries[m + 3],
                        stored,
                    );
                    for (lane, &dot) in d.iter().enumerate() {
                        out[m + lane] = finish(m + lane, dot);
                    }
                    m += 4;
                }
                for (m, q) in queries.iter().enumerate().skip(m) {
                    debug_assert_eq!(q.len(), stored.len());
                    out[m] = finish(m, dot1(q, stored));
                }
            }
            Distance::Dot => {
                let mut m = 0;
                if wide8 {
                    while m + 8 <= queries.len() {
                        debug_assert_eq!(queries[m].len(), stored.len());
                        let d = dot8(&queries[m..m + 8], stored);
                        for (lane, &dot) in d.iter().enumerate() {
                            out[m + lane] = -dot;
                        }
                        m += 8;
                    }
                }
                while m + 4 <= queries.len() {
                    debug_assert_eq!(queries[m].len(), stored.len());
                    let d = dot4(
                        queries[m],
                        queries[m + 1],
                        queries[m + 2],
                        queries[m + 3],
                        stored,
                    );
                    for (lane, &dot) in d.iter().enumerate() {
                        out[m + lane] = -dot;
                    }
                    m += 4;
                }
                for (m, q) in queries.iter().enumerate().skip(m) {
                    debug_assert_eq!(q.len(), stored.len());
                    out[m] = -dot1(q, stored);
                }
            }
            Distance::Euclid => {
                let mut m = 0;
                if wide8 {
                    while m + 8 <= queries.len() {
                        debug_assert_eq!(queries[m].len(), stored.len());
                        let d = euclid8(&queries[m..m + 8], stored);
                        out[m..m + 8].copy_from_slice(&d);
                        m += 8;
                    }
                }
                while m + 4 <= queries.len() {
                    debug_assert_eq!(queries[m].len(), stored.len());
                    let d = euclid4(
                        queries[m],
                        queries[m + 1],
                        queries[m + 2],
                        queries[m + 3],
                        stored,
                    );
                    out[m..m + 4].copy_from_slice(&d);
                    m += 4;
                }
                for (m, q) in queries.iter().enumerate().skip(m) {
                    debug_assert_eq!(q.len(), stored.len());
                    out[m] = euclid1(q, stored);
                }
            }
        }
    }

    /// Converts a distance back into a similarity score (**higher is
    /// closer**), the form reported to API users.
    #[must_use]
    pub fn similarity_from_distance(self, d: f32) -> f32 {
        match self {
            Distance::Cosine => 1.0 - d,
            Distance::Dot => -d,
            Distance::Euclid => -d,
        }
    }
}

#[inline]
fn euclid1(q: &[f32], stored: &[f32]) -> f32 {
    let mut s = 0.0f32;
    for (x, y) in q.iter().zip(stored) {
        let d = x - y;
        s += d * d;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_identical_is_zero() {
        let a = [0.6f32, 0.8];
        assert!(Distance::Cosine.distance(&a, &a).abs() < 1e-6);
    }

    #[test]
    fn cosine_orthogonal_is_one() {
        assert!((Distance::Cosine.distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_max() {
        assert_eq!(Distance::Cosine.distance(&[0.0, 0.0], &[1.0, 0.0]), 1.0);
    }

    #[test]
    fn euclid_matches_manual() {
        let d = Distance::Euclid.distance(&[0.0, 0.0], &[3.0, 4.0]);
        assert!((d - 25.0).abs() < 1e-6);
    }

    #[test]
    fn dot_lower_is_closer() {
        let q = [1.0f32, 0.0];
        let near = [0.9f32, 0.1];
        let far = [0.1f32, 0.9];
        assert!(Distance::Dot.distance(&q, &near) < Distance::Dot.distance(&q, &far));
    }

    #[test]
    fn similarity_roundtrip() {
        let d = Distance::Cosine.distance(&[1.0, 0.0], &[0.7, 0.7]);
        let s = Distance::Cosine.similarity_from_distance(d);
        assert!((s - 0.7f32 / (0.98f32).sqrt()).abs() < 1e-3);
    }

    fn pseudo(seed: u64, dim: usize) -> Vec<f32> {
        probe_vec(seed, dim)
    }

    #[test]
    fn normed_distance_matches_plain_within_rounding() {
        for metric in [Distance::Cosine, Distance::Dot, Distance::Euclid] {
            for seed in 0..20u64 {
                let a = pseudo(seed, 24);
                let b = pseudo(seed + 100, 24);
                let plain = metric.distance(&a, &b);
                let normed = metric.distance_normed(&a, inv_norm(&a), &b, inv_norm(&b));
                assert!(
                    (plain - normed).abs() < 1e-5,
                    "{metric:?}: {plain} vs {normed}"
                );
            }
        }
    }

    #[test]
    fn normed_zero_vector_is_max_cosine() {
        let z = [0.0f32, 0.0];
        let v = [1.0f32, 0.0];
        assert_eq!(inv_norm(&z), 0.0);
        assert_eq!(
            Distance::Cosine.distance_normed(&z, inv_norm(&z), &v, inv_norm(&v)),
            1.0
        );
    }

    #[test]
    fn score_batch_matches_per_query_normed_distance() {
        let stored = pseudo(999, 24);
        let stored_inv = inv_norm(&stored);
        let queries: Vec<Vec<f32>> = (0..7).map(|s| pseudo(s, 24)).collect();
        let q_refs: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();
        let q_invs: Vec<f32> = queries.iter().map(|q| inv_norm(q)).collect();
        for metric in [Distance::Cosine, Distance::Dot, Distance::Euclid] {
            let mut out = vec![0.0f32; queries.len()];
            metric.score_batch(&q_refs, &q_invs, &stored, stored_inv, &mut out);
            for (m, q) in queries.iter().enumerate() {
                let single = metric.distance_normed(q, q_invs[m], &stored, stored_inv);
                assert_eq!(out[m], single, "{metric:?} query {m} diverged from single");
            }
        }
    }

    #[test]
    fn wide_kernels_are_bit_identical_to_scalar() {
        // 13 queries exercise the 8-wide sweep, the 4-wide interleave,
        // and the scalar remainder in one call; every lane must be
        // exactly equal to the per-query scalar path.
        let stored = pseudo(4242, 96);
        let stored_inv = inv_norm(&stored);
        let queries: Vec<Vec<f32>> = (0..13).map(|s| pseudo(s + 500, 96)).collect();
        let q_refs: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();
        let q_invs: Vec<f32> = queries.iter().map(|q| inv_norm(q)).collect();
        for metric in [Distance::Cosine, Distance::Dot, Distance::Euclid] {
            let mut out = vec![0.0f32; queries.len()];
            metric.score_batch(&q_refs, &q_invs, &stored, stored_inv, &mut out);
            for (m, q) in queries.iter().enumerate() {
                let single = metric.distance_normed(q, q_invs[m], &stored, stored_inv);
                assert_eq!(out[m], single, "{metric:?} query {m} diverged from single");
            }
        }
        // The 8-wide kernels themselves agree with the scalar chains.
        let d8 = dot8(&q_refs[..8], &stored);
        let e8 = euclid8(&q_refs[..8], &stored);
        for lane in 0..8 {
            assert_eq!(d8[lane], dot1(q_refs[lane], &stored));
            assert_eq!(e8[lane], euclid1(q_refs[lane], &stored));
        }
    }

    #[test]
    fn kernel_width_probe_picks_a_supported_width() {
        let w = batch_kernel_width();
        assert!(w == 4 || w == 8, "unexpected kernel width {w}");
        // Stable across calls (OnceLock).
        assert_eq!(w, batch_kernel_width());
        // Prefetch helpers must be callable on any slice.
        prefetch_slice(&[]);
        prefetch_slice(&pseudo(1, 200));
    }
}

//! Distance metrics.

use serde::{Deserialize, Serialize};

/// Supported vector distance metrics (Qdrant's set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Distance {
    /// Cosine distance `1 - cos(a, b)`. The paper's setting (OpenAI
    /// embeddings are compared by cosine).
    #[default]
    Cosine,
    /// Negative dot product (for already-normalized vectors this equals
    /// cosine up to an affine transform).
    Dot,
    /// Squared Euclidean distance.
    Euclid,
}

impl Distance {
    /// Distance between two vectors; **lower is closer** for every
    /// metric.
    #[must_use]
    pub fn distance(self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Distance::Cosine => {
                let (mut dot, mut na, mut nb) = (0.0f32, 0.0f32, 0.0f32);
                // Chunked loop: lets the compiler vectorize.
                for (x, y) in a.iter().zip(b) {
                    dot += x * y;
                    na += x * x;
                    nb += y * y;
                }
                let denom = (na * nb).sqrt();
                if denom == 0.0 {
                    1.0
                } else {
                    1.0 - dot / denom
                }
            }
            Distance::Dot => {
                let mut dot = 0.0f32;
                for (x, y) in a.iter().zip(b) {
                    dot += x * y;
                }
                -dot
            }
            Distance::Euclid => {
                let mut s = 0.0f32;
                for (x, y) in a.iter().zip(b) {
                    let d = x - y;
                    s += d * d;
                }
                s
            }
        }
    }

    /// Converts a distance back into a similarity score (**higher is
    /// closer**), the form reported to API users.
    #[must_use]
    pub fn similarity_from_distance(self, d: f32) -> f32 {
        match self {
            Distance::Cosine => 1.0 - d,
            Distance::Dot => -d,
            Distance::Euclid => -d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_identical_is_zero() {
        let a = [0.6f32, 0.8];
        assert!(Distance::Cosine.distance(&a, &a).abs() < 1e-6);
    }

    #[test]
    fn cosine_orthogonal_is_one() {
        assert!((Distance::Cosine.distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_max() {
        assert_eq!(Distance::Cosine.distance(&[0.0, 0.0], &[1.0, 0.0]), 1.0);
    }

    #[test]
    fn euclid_matches_manual() {
        let d = Distance::Euclid.distance(&[0.0, 0.0], &[3.0, 4.0]);
        assert!((d - 25.0).abs() < 1e-6);
    }

    #[test]
    fn dot_lower_is_closer() {
        let q = [1.0f32, 0.0];
        let near = [0.9f32, 0.1];
        let far = [0.1f32, 0.9];
        assert!(Distance::Dot.distance(&q, &near) < Distance::Dot.distance(&q, &far));
    }

    #[test]
    fn similarity_roundtrip() {
        let d = Distance::Cosine.distance(&[1.0, 0.0], &[0.7, 0.7]);
        let s = Distance::Cosine.similarity_from_distance(d);
        assert!((s - 0.7f32 / (0.98f32).sqrt()).abs() < 1e-3);
    }
}

//! FSST-style per-string compression with random access.
//!
//! The Fast Static Symbol Table scheme (Boncz, Neumann, Leis — VLDB
//! 2020) compresses short strings *independently* against one shared
//! dictionary of up to 255 byte-sequences ("symbols", 1–8 bytes each):
//! compression greedily replaces the longest matching symbol with its
//! 1-byte code, escaping unmatched bytes as `0xFF <byte>`. Because
//! every string is coded on its own, any single string decompresses
//! without touching its neighbors — the property a point store needs
//! (block codecs like LZ4 would drag a whole block through memory to
//! read one payload).
//!
//! The table is trained on a corpus sample by the paper's iterative
//! scheme: parse the sample with the current table, count emitted
//! symbols and merges of adjacent pairs, keep the 255 candidates with
//! the highest gain (`frequency × length`), repeat. A handful of
//! rounds converges for natural-language tips.

use serde::{Deserialize, Serialize};

/// Escape code: the next output byte is a literal. Symbol codes are
/// `0..=254`, so a table holds at most 255 symbols.
const ESCAPE: u8 = 0xFF;

/// Longest symbol, in bytes (FSST's choice).
const MAX_SYMBOL_LEN: usize = 8;

/// Training rounds. FSST uses 5; gains flatten after that.
const TRAIN_ROUNDS: usize = 5;

/// A trained symbol table.
///
/// `by_first` is derived from `symbols` but serialized anyway: it is
/// tiny (one list per leading byte) and keeping it materialized means
/// a deserialized table compresses immediately with no rebuild hook.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SymbolTable {
    /// Symbol bytes, indexed by code.
    symbols: Vec<Vec<u8>>,
    /// Symbol codes grouped by first byte, longest symbol first, so the
    /// greedy longest-match probe scans one short bucket.
    by_first: Vec<Vec<u8>>,
}

impl SymbolTable {
    /// Trains a table on a sample of the corpus. An empty sample yields
    /// an empty table (everything escapes; compression becomes a 2x
    /// expansion, so callers should only compress with a trained table).
    #[must_use]
    pub fn train(samples: &[&[u8]]) -> Self {
        let mut table = Self {
            symbols: Vec::new(),
            by_first: vec![Vec::new(); 256],
        };
        if samples.iter().all(|s| s.is_empty()) {
            return table;
        }
        for _ in 0..TRAIN_ROUNDS {
            table = table.refine(samples);
        }
        table
    }

    /// One training round: parse the sample with `self`, score current
    /// symbols and adjacent-pair merges, keep the top 255 by gain.
    fn refine(&self, samples: &[&[u8]]) -> Self {
        use std::collections::HashMap;
        let mut gain: HashMap<Vec<u8>, u64> = HashMap::new();
        for s in samples {
            let mut prev: Option<&[u8]> = None;
            let mut pos = 0;
            while pos < s.len() {
                let tok: &[u8] = match self.longest_match(&s[pos..]) {
                    Some(code) => &self.symbols[code as usize],
                    None => &s[pos..pos + 1],
                };
                pos += tok.len();
                *gain.entry(tok.to_vec()).or_insert(0) += tok.len() as u64;
                if let Some(p) = prev {
                    if p.len() + tok.len() <= MAX_SYMBOL_LEN {
                        let merged = [p, tok].concat();
                        let w = merged.len() as u64;
                        *gain.entry(merged).or_insert(0) += w;
                    }
                }
                prev = Some(tok);
            }
        }
        // Deterministic selection: gain descending, then bytes.
        let mut candidates: Vec<(Vec<u8>, u64)> = gain.into_iter().collect();
        candidates.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        candidates.truncate(255);
        let mut next = Self {
            symbols: candidates.into_iter().map(|(s, _)| s).collect(),
            by_first: vec![Vec::new(); 256],
        };
        for (code, sym) in next.symbols.iter().enumerate() {
            next.by_first[sym[0] as usize].push(code as u8);
        }
        for bucket in &mut next.by_first {
            bucket.sort_by_key(|&c| std::cmp::Reverse(next.symbols[c as usize].len()));
        }
        next
    }

    /// Code of the longest symbol prefixing `tail`, if any.
    fn longest_match(&self, tail: &[u8]) -> Option<u8> {
        let bucket = &self.by_first[tail[0] as usize];
        bucket
            .iter()
            .copied()
            .find(|&c| tail.starts_with(&self.symbols[c as usize]))
    }

    /// Number of symbols in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the table holds no symbols.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Compresses one string independently of all others.
    #[must_use]
    pub fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 1);
        let mut pos = 0;
        while pos < input.len() {
            match self.longest_match(&input[pos..]) {
                Some(code) => {
                    out.push(code);
                    pos += self.symbols[code as usize].len();
                }
                None => {
                    out.push(ESCAPE);
                    out.push(input[pos]);
                    pos += 1;
                }
            }
        }
        out
    }

    /// Exact inverse of [`SymbolTable::compress`].
    #[must_use]
    pub fn decompress(&self, codes: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(codes.len() * 3);
        let mut pos = 0;
        while pos < codes.len() {
            let c = codes[pos];
            if c == ESCAPE {
                out.push(codes[pos + 1]);
                pos += 2;
            } else {
                out.extend_from_slice(&self.symbols[c as usize]);
                pos += 1;
            }
        }
        out
    }

    /// Heap bytes of the table itself.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.symbols.iter().map(|s| s.len() + 24).sum::<usize>()
            + self.by_first.iter().map(|b| b.len() + 24).sum::<usize>()
    }
}

/// An append-only arena of independently compressed strings with O(1)
/// random access: `get(i)` decompresses string `i` and nothing else.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompressedStrings {
    table: SymbolTable,
    data: Vec<u8>,
    /// `offsets[i]..offsets[i+1]` is string `i`'s code range.
    offsets: Vec<u64>,
    /// Total uncompressed bytes pushed (for ratio reporting).
    raw_bytes: u64,
}

impl CompressedStrings {
    /// An empty arena over a trained table.
    #[must_use]
    pub fn new(table: SymbolTable) -> Self {
        Self {
            table,
            data: Vec::new(),
            offsets: vec![0],
            raw_bytes: 0,
        }
    }

    /// Appends a string, returning its index.
    pub fn push(&mut self, s: &str) -> u32 {
        let codes = self.table.compress(s.as_bytes());
        self.data.extend_from_slice(&codes);
        self.offsets.push(self.data.len() as u64);
        self.raw_bytes += s.len() as u64;
        (self.offsets.len() - 2) as u32
    }

    /// Decompresses string `i`. Strings are valid UTF-8 going in, the
    /// codec is byte-exact, so the round trip cannot produce invalid
    /// UTF-8.
    #[must_use]
    pub fn get(&self, i: u32) -> String {
        let (lo, hi) = (self.offsets[i as usize], self.offsets[i as usize + 1]);
        let bytes = self.table.decompress(&self.data[lo as usize..hi as usize]);
        String::from_utf8(bytes).expect("FSST round trip preserves bytes")
    }

    /// Number of stored strings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the arena holds no strings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compressed heap bytes (codes + offsets + table).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.data.len() + self.offsets.len() * 8 + self.table.memory_bytes()
    }

    /// Total uncompressed bytes pushed.
    #[must_use]
    pub fn raw_bytes(&self) -> usize {
        self.raw_bytes as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        // Repetitive natural-language-ish text, the target distribution.
        (0..200)
            .map(|i| {
                format!(
                    "the coffee here is excellent and the staff were friendly; \
                     visit number {i} confirmed the pastries remain outstanding"
                )
            })
            .collect()
    }

    fn as_bytes(v: &[String]) -> Vec<&[u8]> {
        v.iter().map(|s| s.as_bytes()).collect()
    }

    #[test]
    fn round_trip_is_exact() {
        let c = corpus();
        let t = SymbolTable::train(&as_bytes(&c));
        for s in &c {
            assert_eq!(t.decompress(&t.compress(s.as_bytes())), s.as_bytes());
        }
        // Strings the table never saw still round-trip (escapes).
        for odd in ["", "ZZZ###\u{00ff}\u{0151}", "日本語のテキスト", "a"] {
            assert_eq!(t.decompress(&t.compress(odd.as_bytes())), odd.as_bytes());
        }
    }

    #[test]
    fn compresses_repetitive_text_well() {
        let c = corpus();
        let t = SymbolTable::train(&as_bytes(&c));
        let raw: usize = c.iter().map(String::len).sum();
        let packed: usize = c.iter().map(|s| t.compress(s.as_bytes()).len()).sum();
        let ratio = packed as f64 / raw as f64;
        assert!(ratio < 0.5, "expected < 0.5 compression ratio, got {ratio}");
    }

    #[test]
    fn training_is_deterministic() {
        let c = corpus();
        let t1 = SymbolTable::train(&as_bytes(&c));
        let t2 = SymbolTable::train(&as_bytes(&c));
        assert_eq!(t1.symbols, t2.symbols);
    }

    #[test]
    fn random_access_arena() {
        let c = corpus();
        let t = SymbolTable::train(&as_bytes(&c));
        let mut arena = CompressedStrings::new(t);
        let idxs: Vec<u32> = c.iter().map(|s| arena.push(s)).collect();
        // Access out of order; each get touches only its own range.
        for (&i, s) in idxs.iter().zip(&c).rev() {
            assert_eq!(arena.get(i), *s);
        }
        assert!(arena.memory_bytes() < arena.raw_bytes());
    }

    #[test]
    fn empty_table_escapes_everything() {
        let t = SymbolTable::train(&[]);
        assert!(t.is_empty());
        let s = b"fallback";
        assert_eq!(t.compress(s).len(), s.len() * 2);
        assert_eq!(t.decompress(&t.compress(s)), s);
    }

    #[test]
    fn serde_round_trip_compresses_identically() {
        let c = corpus();
        let t = SymbolTable::train(&as_bytes(&c));
        let json = serde_json::to_string(&t).unwrap();
        let back: SymbolTable = serde_json::from_str(&json).unwrap();
        for s in c.iter().take(10) {
            assert_eq!(back.compress(s.as_bytes()), t.compress(s.as_bytes()));
        }
    }
}

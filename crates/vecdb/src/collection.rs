//! Collections: vectors + payloads + index + query planning.

use serde::{Deserialize, Serialize};

use crate::distance::{inv_norm, Distance};
use crate::error::VecDbError;
use crate::hnsw::{HnswConfig, HnswIndex};
use crate::learned::LearnedIdIndex;
use crate::payload::{Filter, Payload, PayloadStore};
use crate::quant::{QuantizedVectors, ScoringTier};
use crate::PointId;

/// Point count at which [`ScoringTier::Auto`] switches the exact-scan
/// paths to quantized-first scoring. Below it a full-precision scan is
/// already cache-resident and the tier would only add a rerank pass;
/// above it the 4× smaller code array wins on memory traffic.
pub const AUTO_QUANT_THRESHOLD: usize = 32_768;

/// Minimum points before a forced [`ScoringTier::Quantized`] trains its
/// codebook — a global affine codebook fitted to fewer vectors than
/// this is noise.
const QUANT_MIN_POINTS: usize = 64;

/// Configuration of a collection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollectionConfig {
    /// Vector dimensionality.
    pub dim: usize,
    /// Distance metric.
    pub distance: Distance,
    /// HNSW parameters.
    pub hnsw: HnswConfig,
    /// If a filter qualifies at most this fraction of points, the planner
    /// switches from filtered HNSW to an exact scan of the qualifying
    /// points (Qdrant's "payload-based pre-filtering" heuristic).
    pub full_scan_threshold: f64,
    /// Which representation exact scans score over (quantized-first
    /// with full-precision rerank vs. full precision throughout).
    pub scoring_tier: ScoringTier,
    /// Whether long payload text fields are stored FSST-compressed
    /// (see [`PayloadStore`]). Off by default; the metro-scale prep
    /// turns it on.
    pub compress_payload_text: bool,
}

impl CollectionConfig {
    /// Default configuration at a given dimension.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            distance: Distance::Cosine,
            hnsw: HnswConfig::default(),
            full_scan_threshold: 0.10,
            scoring_tier: ScoringTier::Auto,
            compress_payload_text: false,
        }
    }
}

/// Resident-memory accounting for one collection, component by
/// component — the report the metro bench gates layout regressions on.
/// Every figure is an accounting estimate from container sizes, not an
/// allocator census.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Stored points (including soft-deleted offsets).
    pub points: usize,
    /// Full-precision vectors + their cached inverse norms.
    pub vector_bytes: usize,
    /// Quantized codes + their cached inverse norms (0 when the tier is
    /// off).
    pub quant_bytes: usize,
    /// The id → offset index.
    pub id_index_bytes: usize,
    /// Payload storage (skeletons + text tier).
    pub payload_bytes: usize,
}

impl MemoryFootprint {
    /// Bytes the steady-state *scoring* path keeps hot: codes when the
    /// quantized tier is active (the f32 store is then only touched for
    /// the `rerank_factor × k` survivors per query), the full vectors
    /// otherwise — plus the id index and payloads, which every filtered
    /// query walks.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        let scoring = if self.quant_bytes > 0 {
            self.quant_bytes
        } else {
            self.vector_bytes
        };
        scoring + self.id_index_bytes + self.payload_bytes
    }

    /// Everything, including the full-precision rerank store when the
    /// quantized tier is active. The rerank store currently stays in
    /// RAM (spilling it is a roadmap item), so this is the honest
    /// process-size figure.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.vector_bytes + self.quant_bytes + self.id_index_bytes + self.payload_bytes
    }

    /// [`MemoryFootprint::resident_bytes`] per stored point.
    #[must_use]
    pub fn resident_bytes_per_point(&self) -> usize {
        self.resident_bytes().checked_div(self.points).unwrap_or(0)
    }
}

/// A point-in-time statistical summary of a collection — the feature
/// source cost-based planners read before choosing an access path
/// (cheap: every field is already tracked, nothing is scanned).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectionStats {
    /// Live (non-deleted) points.
    pub points: usize,
    /// Soft-deleted points still occupying graph nodes.
    pub deleted: usize,
    /// Vector dimensionality.
    pub dim: usize,
    /// Distance metric in use.
    pub distance: Distance,
    /// Whether every stored vector has its inverse L2 norm cached, i.e.
    /// cosine scoring runs as one fused dot product per candidate.
    pub norm_cached: bool,
}

/// A search hit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredPoint {
    /// Caller-assigned point id.
    pub id: PointId,
    /// Similarity score (**higher is closer**; for cosine this is the
    /// cosine similarity).
    pub score: f32,
}

/// How a search should be executed.
///
/// `Auto` reproduces Qdrant's built-in heuristic (scan when the filter is
/// selective, HNSW otherwise) for callers without a planner of their own.
/// Cost-based planners — like `semask`'s `QueryPlanner` — decide per query
/// and pass `Exact` or `Hnsw` explicitly, so the decision lives in one
/// observable place instead of being buried here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SearchStrategy {
    /// Let the collection's `full_scan_threshold` heuristic decide.
    #[default]
    Auto,
    /// Exact scan of the qualifying points.
    Exact,
    /// Filtered HNSW graph search.
    Hnsw,
}

/// The strategy a search actually executed (never `Auto`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutedStrategy {
    /// Qualifying points were scanned exactly.
    ExactScan,
    /// The HNSW graph was searched with a filter mask.
    FilteredHnsw,
}

/// A search result with its execution metadata, for planners and
/// latency-breakdown reporting.
#[derive(Debug, Clone)]
pub struct PlannedSearch {
    /// The hits, best first.
    pub hits: Vec<ScoredPoint>,
    /// The strategy that produced them.
    pub executed: ExecutedStrategy,
    /// Number of live points matching the filter (exact count — the
    /// ground truth a selectivity estimator approximates).
    pub qualifying: usize,
}

/// The HNSW beam width used when a search does not set `ef`
/// explicitly: `max(4k, 64)`. The single source of truth — external
/// cost models price HNSW searches with this same default.
#[must_use]
pub fn default_ef(k: usize) -> usize {
    (4 * k).max(64)
}

/// Search-time parameters.
#[derive(Debug, Clone)]
pub struct SearchParams {
    /// Number of results.
    pub k: usize,
    /// HNSW beam width (defaults to [`default_ef`] when `None`).
    pub ef: Option<usize>,
    /// Optional payload filter.
    pub filter: Option<Filter>,
    /// Execution strategy.
    pub strategy: SearchStrategy,
}

impl SearchParams {
    /// Top-k search with no filter.
    #[must_use]
    pub fn top_k(k: usize) -> Self {
        Self {
            k,
            ef: None,
            filter: None,
            strategy: SearchStrategy::Auto,
        }
    }

    /// Builder-style filter.
    #[must_use]
    pub fn with_filter(mut self, filter: Filter) -> Self {
        self.filter = Some(filter);
        self
    }

    /// Builder-style exactness toggle (`true` forces an exact scan,
    /// `false` restores the auto heuristic).
    #[must_use]
    pub fn with_exact(mut self, exact: bool) -> Self {
        self.strategy = if exact {
            SearchStrategy::Exact
        } else {
            SearchStrategy::Auto
        };
        self
    }

    /// Builder-style execution strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder-style beam width.
    #[must_use]
    pub fn with_ef(mut self, ef: usize) -> Self {
        self.ef = Some(ef);
        self
    }
}

/// A named set of points: vectors, payloads, and an HNSW index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Collection {
    config: CollectionConfig,
    ids: Vec<PointId>,
    vectors: Vec<Vec<f32>>,
    /// Cached inverse L2 norm per offset, filled at insert time: stored
    /// data is immutable, so cosine scoring never re-derives a stored
    /// vector's norm (it degenerates to one fused dot product).
    inv_norms: Vec<f32>,
    payloads: PayloadStore,
    by_id: LearnedIdIndex,
    /// Soft-delete flags per offset (the HNSW graph keeps the node for
    /// connectivity; search skips flagged offsets — Qdrant's strategy).
    deleted: Vec<bool>,
    live: usize,
    hnsw: HnswIndex,
    /// u8 codes for the quantized scoring tier, parallel to `vectors`.
    /// Built lazily when the tier activates; grown per insert with the
    /// frozen codebook and re-encoded when the collection doubles.
    quant: Option<QuantizedVectors>,
    /// Point count at the last codebook (re-)training.
    quant_trained_at: usize,
}

impl Collection {
    /// An empty collection.
    #[must_use]
    pub fn new(config: CollectionConfig) -> Self {
        let hnsw = HnswIndex::new(config.distance, config.hnsw.clone());
        let payloads = if config.compress_payload_text {
            PayloadStore::compressed()
        } else {
            PayloadStore::plain()
        };
        Self {
            config,
            ids: Vec::new(),
            vectors: Vec::new(),
            inv_norms: Vec::new(),
            payloads,
            by_id: LearnedIdIndex::new(),
            deleted: Vec::new(),
            live: 0,
            hnsw,
            quant: None,
            quant_trained_at: 0,
        }
    }

    /// Number of live (non-deleted) points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the collection has no live points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The collection's configuration.
    #[must_use]
    pub fn config(&self) -> &CollectionConfig {
        &self.config
    }

    /// Statistical summary for cost-based planners: size, dimensionality,
    /// metric, and whether the norm cache covers every stored vector.
    #[must_use]
    pub fn stats(&self) -> CollectionStats {
        CollectionStats {
            points: self.live,
            deleted: self.vectors.len() - self.live,
            dim: self.config.dim,
            distance: self.config.distance,
            norm_cached: self.inv_norms.len() == self.vectors.len(),
        }
    }

    /// Inserts a point. Live ids must be unique; to change a point,
    /// delete it and insert the id again (the HNSW graph itself is
    /// append-only).
    pub fn insert(
        &mut self,
        id: PointId,
        vector: Vec<f32>,
        payload: Payload,
    ) -> Result<(), VecDbError> {
        if vector.len() != self.config.dim {
            return Err(VecDbError::DimensionMismatch {
                expected: self.config.dim,
                found: vector.len(),
            });
        }
        if vector.iter().any(|x| !x.is_finite()) {
            return Err(VecDbError::NonFiniteVector);
        }
        if self.by_id.contains_key(id) {
            return Err(VecDbError::PointExists { id });
        }
        let offset = self.vectors.len();
        self.ids.push(id);
        self.inv_norms.push(inv_norm(&vector));
        self.vectors.push(vector);
        self.payloads.push(payload);
        self.deleted.push(false);
        self.live += 1;
        self.by_id.insert(id, offset);
        self.hnsw.insert(offset, &self.vectors, &self.inv_norms);
        self.maintain_quant();
        Ok(())
    }

    /// Keeps the quantized tier in sync with the vector store: trains
    /// the codebook once the tier's activation threshold is reached,
    /// appends with the frozen codebook in between, and re-encodes
    /// everything when the collection has doubled since training (so
    /// the global codebook tracks the value range as data grows).
    fn maintain_quant(&mut self) {
        let activate_at = match self.config.scoring_tier {
            ScoringTier::Full => return,
            ScoringTier::Quantized { .. } => QUANT_MIN_POINTS,
            ScoringTier::Auto => AUTO_QUANT_THRESHOLD,
        };
        let n = self.vectors.len();
        if n < activate_at {
            return;
        }
        if self.quant.is_none() || n >= self.quant_trained_at.saturating_mul(2) {
            self.quant = Some(QuantizedVectors::encode(&self.vectors));
            self.quant_trained_at = n;
        } else if let Some(q) = &mut self.quant {
            q.push(&self.vectors[n - 1]);
        }
    }

    /// The quantized store and rerank factor, when the configured tier
    /// is active for the current collection size.
    fn active_quant(&self) -> Option<(&QuantizedVectors, usize)> {
        let rerank = match self.config.scoring_tier {
            ScoringTier::Full => return None,
            ScoringTier::Quantized { rerank_factor } => rerank_factor.max(1),
            ScoringTier::Auto => ScoringTier::DEFAULT_RERANK_FACTOR,
        };
        self.quant.as_ref().map(|q| (q, rerank))
    }

    /// Soft-deletes a point: it disappears from every search and lookup,
    /// while its graph node keeps serving as a routing hop.
    pub fn delete(&mut self, id: PointId) -> Result<(), VecDbError> {
        let offset = self
            .by_id
            .remove(id)
            .ok_or(VecDbError::PointNotFound { id })?;
        self.deleted[offset] = true;
        self.live -= 1;
        Ok(())
    }

    /// Replaces the payload of an existing point (Qdrant `set_payload`).
    pub fn update_payload(&mut self, id: PointId, payload: Payload) -> Result<(), VecDbError> {
        let offset = self.by_id.get(id).ok_or(VecDbError::PointNotFound { id })?;
        self.payloads.set(offset, payload);
        Ok(())
    }

    /// Whether a live (non-deleted) point with this id exists.
    #[must_use]
    pub fn contains(&self, id: PointId) -> bool {
        self.by_id.contains_key(id)
    }

    /// The payload of a point (reassembled when the compressed text
    /// tier is active, hence owned).
    pub fn payload(&self, id: PointId) -> Result<Payload, VecDbError> {
        self.by_id
            .get(id)
            .map(|o| self.payloads.get(o))
            .ok_or(VecDbError::PointNotFound { id })
    }

    /// The vector of a point.
    pub fn vector(&self, id: PointId) -> Result<&[f32], VecDbError> {
        self.by_id
            .get(id)
            .map(|o| self.vectors[o].as_slice())
            .ok_or(VecDbError::PointNotFound { id })
    }

    /// Ids of all live points whose payload matches `filter`.
    #[must_use]
    pub fn filter_ids(&self, filter: &Filter) -> Vec<PointId> {
        (0..self.ids.len())
            .filter(|&o| !self.deleted[o] && self.payloads.matches(o, filter))
            .map(|o| self.ids[o])
            .collect()
    }

    /// Component-by-component resident-memory accounting.
    #[must_use]
    pub fn memory_footprint(&self) -> MemoryFootprint {
        let n = self.vectors.len();
        MemoryFootprint {
            points: n,
            // Vec<Vec<f32>> data + per-vector (ptr, cap, len) headers,
            // plus the inverse-norm cache.
            vector_bytes: n * (self.config.dim * 4 + 24) + n * 4,
            quant_bytes: self
                .quant
                .as_ref()
                .map_or(0, |q| q.memory_bytes() + q.len() * 4),
            id_index_bytes: self.by_id.memory_bytes(),
            payload_bytes: self.payloads.memory_bytes(),
        }
    }

    /// k-NN search with optional payload filtering.
    ///
    /// Equivalent to [`Collection::search_planned`] with the execution
    /// metadata dropped.
    pub fn search(
        &self,
        query: &[f32],
        params: &SearchParams,
    ) -> Result<Vec<ScoredPoint>, VecDbError> {
        self.search_planned(query, params).map(|p| p.hits)
    }

    /// k-NN search returning execution metadata alongside the hits.
    ///
    /// With [`SearchStrategy::Exact`] or [`SearchStrategy::Hnsw`] the
    /// caller's choice is executed as-is — this is the entry point for
    /// external planners. [`SearchStrategy::Auto`] mirrors Qdrant: a
    /// filter qualifying at most `full_scan_threshold` of the points runs
    /// as an exact scan, anything broader as filtered HNSW.
    pub fn search_planned(
        &self,
        query: &[f32],
        params: &SearchParams,
    ) -> Result<PlannedSearch, VecDbError> {
        if query.len() != self.config.dim {
            return Err(VecDbError::DimensionMismatch {
                expected: self.config.dim,
                found: query.len(),
            });
        }
        // Trivially empty results still report the strategy the caller
        // asked for (latency-breakdown consumers log it).
        let trivial_executed = match params.strategy {
            SearchStrategy::Hnsw => ExecutedStrategy::FilteredHnsw,
            SearchStrategy::Exact | SearchStrategy::Auto => ExecutedStrategy::ExactScan,
        };
        if self.is_empty() || params.k == 0 {
            return Ok(PlannedSearch {
                hits: Vec::new(),
                executed: trivial_executed,
                qualifying: 0,
            });
        }

        // Evaluate the filter once into a bitmap (deleted points never
        // qualify).
        let mask: Option<Vec<bool>> = if params.filter.is_some() || self.live < self.ids.len() {
            let f = params.filter.as_ref();
            Some(
                (0..self.ids.len())
                    .map(|o| !self.deleted[o] && f.is_none_or(|f| self.payloads.matches(o, f)))
                    .collect(),
            )
        } else {
            None
        };
        let qualifying = mask
            .as_ref()
            .map_or(self.len(), |m| m.iter().filter(|&&b| b).count());
        if qualifying == 0 {
            return Ok(PlannedSearch {
                hits: Vec::new(),
                executed: trivial_executed,
                qualifying: 0,
            });
        }

        let executed = match params.strategy {
            SearchStrategy::Exact => ExecutedStrategy::ExactScan,
            SearchStrategy::Hnsw => ExecutedStrategy::FilteredHnsw,
            SearchStrategy::Auto => {
                let selective =
                    qualifying as f64 <= self.config.full_scan_threshold * self.len() as f64;
                if selective {
                    ExecutedStrategy::ExactScan
                } else {
                    ExecutedStrategy::FilteredHnsw
                }
            }
        };

        let hits = match executed {
            ExecutedStrategy::ExactScan => self.exact_hits(query, params.k, mask.as_deref()),
            ExecutedStrategy::FilteredHnsw => {
                let ef = params.ef.unwrap_or_else(|| default_ef(params.k));
                self.hnsw_hits(query, params.k, ef, mask.as_deref())
            }
        };

        Ok(PlannedSearch {
            hits: hits
                .into_iter()
                .map(|(o, d)| ScoredPoint {
                    id: self.ids[o],
                    score: self.config.distance.similarity_from_distance(d),
                })
                .collect(),
            executed,
            qualifying,
        })
    }

    /// Exact scan over offsets passing `mask`, ascending by distance.
    ///
    /// With the quantized tier active this is a two-pass scan: a coarse
    /// pass scores every qualifying offset over the u8 codes (¼ the
    /// memory traffic of the f32 store), keeps the best
    /// `rerank_factor × k`, and a rerank pass rescores only those
    /// survivors at full precision — so reported distances are always
    /// full-precision. Otherwise scoring goes through the norm-cached
    /// fast path (for cosine: one fused dot product per stored vector).
    fn exact_hits(&self, query: &[f32], k: usize, mask: Option<&[bool]>) -> Vec<(usize, f32)> {
        let q_inv = inv_norm(query);
        if let Some((quant, rerank_factor)) = self.active_quant() {
            let fetch = k.saturating_mul(rerank_factor);
            let mut coarse: Vec<(usize, f32)> = (0..self.vectors.len())
                .filter(|&o| mask.is_none_or(|m| m[o]))
                .map(|o| {
                    (
                        o,
                        quant.distance_with_query_inv(self.config.distance, query, q_inv, o),
                    )
                })
                .collect();
            if coarse.len() > fetch {
                // (distance, offset) total order, matching the stable
                // full-precision sort's tie behavior.
                top_k_by(&mut coarse, fetch, |a, b| {
                    a.1.partial_cmp(&b.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                let mut fine: Vec<(usize, f32)> = coarse
                    .into_iter()
                    .map(|(o, _)| {
                        (
                            o,
                            self.config.distance.distance_normed(
                                query,
                                q_inv,
                                &self.vectors[o],
                                self.inv_norms[o],
                            ),
                        )
                    })
                    .collect();
                fine.sort_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                fine.truncate(k);
                return fine;
            }
            // Candidate set no bigger than the rerank budget: the
            // coarse pass would prune nothing, so scan at full
            // precision directly.
        }
        let mut scored: Vec<(usize, f32)> = self
            .vectors
            .iter()
            .enumerate()
            .filter(|(o, _)| mask.is_none_or(|m| m[*o]))
            .map(|(o, v)| {
                (
                    o,
                    self.config
                        .distance
                        .distance_normed(query, q_inv, v, self.inv_norms[o]),
                )
            })
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }

    /// Filtered HNSW beam search.
    fn hnsw_hits(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        mask: Option<&[bool]>,
    ) -> Vec<(usize, f32)> {
        match mask {
            None => self
                .hnsw
                .search(query, k, ef, &self.vectors, &self.inv_norms, None),
            Some(m) => {
                let accept = |o: usize| m[o];
                self.hnsw
                    .search(query, k, ef, &self.vectors, &self.inv_norms, Some(&accept))
            }
        }
    }

    /// Iterates over the live points: `(id, vector, payload)`. Offsets of
    /// soft-deleted points are skipped. This is the bulk-read surface the
    /// sharding layer uses to re-partition an existing collection. The
    /// payload is owned: the compressed text tier reassembles it.
    pub fn iter_points(&self) -> impl Iterator<Item = (PointId, &[f32], Payload)> + '_ {
        self.ids
            .iter()
            .enumerate()
            .filter(|(o, _)| !self.deleted[*o])
            .map(|(o, &id)| (id, self.vectors[o].as_slice(), self.payloads.get(o)))
    }

    /// Exact top-k over an explicit candidate id list (used by backends
    /// that pre-filter candidates with an external spatial index).
    /// Unknown and deleted ids are skipped.
    pub fn knn_among(
        &self,
        query: &[f32],
        ids: &[PointId],
        k: usize,
    ) -> Result<Vec<ScoredPoint>, VecDbError> {
        if query.len() != self.config.dim {
            return Err(VecDbError::DimensionMismatch {
                expected: self.config.dim,
                found: query.len(),
            });
        }
        let q_inv = inv_norm(query);
        let resolved: Vec<(PointId, usize)> = ids
            .iter()
            .filter_map(|&id| self.by_id.get(id).map(|o| (id, o)))
            .collect();
        // Quantized coarse pass, engaged only when the candidate list is
        // meaningfully larger than the rerank budget (a size check, so
        // the decision is a deterministic function of collection state).
        let prescreened: Vec<(PointId, usize)> = match self.active_quant() {
            Some((quant, rerank_factor))
                if resolved.len() > k.saturating_mul(rerank_factor).saturating_mul(2) =>
            {
                let fetch = k.saturating_mul(rerank_factor);
                let mut coarse: Vec<(PointId, usize, f32)> = resolved
                    .into_iter()
                    .map(|(id, o)| {
                        (
                            id,
                            o,
                            quant.distance_with_query_inv(self.config.distance, query, q_inv, o),
                        )
                    })
                    .collect();
                top_k_by(&mut coarse, fetch, |a, b| {
                    a.2.partial_cmp(&b.2)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                coarse.into_iter().map(|(id, o, _)| (id, o)).collect()
            }
            _ => resolved,
        };
        let mut scored: Vec<(PointId, f32)> = prescreened
            .into_iter()
            .map(|(id, o)| {
                (
                    id,
                    self.config.distance.distance_normed(
                        query,
                        q_inv,
                        &self.vectors[o],
                        self.inv_norms[o],
                    ),
                )
            })
            .collect();
        scored.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(k);
        Ok(scored
            .into_iter()
            .map(|(id, d)| ScoredPoint {
                id,
                score: self.config.distance.similarity_from_distance(d),
            })
            .collect())
    }

    /// Batched [`Collection::search_planned`]: answers `queries.len()`
    /// searches sharing one [`SearchParams`] in a single pass.
    ///
    /// The filter mask is evaluated **once** for the whole batch, and the
    /// exact-scan path streams each stored vector through the
    /// [`Distance::score_batch`] kernel — every stored vector is loaded
    /// from memory once per batch instead of once per query. Results are
    /// bit-identical to calling [`Collection::search_planned`] per query.
    ///
    /// # Errors
    /// [`VecDbError::DimensionMismatch`] if any query has the wrong
    /// dimension.
    pub fn search_batch(
        &self,
        queries: &[&[f32]],
        params: &SearchParams,
    ) -> Result<Vec<PlannedSearch>, VecDbError> {
        for query in queries {
            if query.len() != self.config.dim {
                return Err(VecDbError::DimensionMismatch {
                    expected: self.config.dim,
                    found: query.len(),
                });
            }
        }
        let trivial_executed = match params.strategy {
            SearchStrategy::Hnsw => ExecutedStrategy::FilteredHnsw,
            SearchStrategy::Exact | SearchStrategy::Auto => ExecutedStrategy::ExactScan,
        };
        if self.is_empty() || params.k == 0 {
            return Ok(queries
                .iter()
                .map(|_| PlannedSearch {
                    hits: Vec::new(),
                    executed: trivial_executed,
                    qualifying: 0,
                })
                .collect());
        }

        // One mask evaluation for the whole batch (the single-query path
        // re-derives it per call — the first amortization win).
        let mask: Option<Vec<bool>> = if params.filter.is_some() || self.live < self.ids.len() {
            let f = params.filter.as_ref();
            Some(
                (0..self.ids.len())
                    .map(|o| !self.deleted[o] && f.is_none_or(|f| self.payloads.matches(o, f)))
                    .collect(),
            )
        } else {
            None
        };
        let qualifying = mask
            .as_ref()
            .map_or(self.len(), |m| m.iter().filter(|&&b| b).count());
        if qualifying == 0 {
            return Ok(queries
                .iter()
                .map(|_| PlannedSearch {
                    hits: Vec::new(),
                    executed: trivial_executed,
                    qualifying: 0,
                })
                .collect());
        }

        let executed = match params.strategy {
            SearchStrategy::Exact => ExecutedStrategy::ExactScan,
            SearchStrategy::Hnsw => ExecutedStrategy::FilteredHnsw,
            SearchStrategy::Auto => {
                let selective =
                    qualifying as f64 <= self.config.full_scan_threshold * self.len() as f64;
                if selective {
                    ExecutedStrategy::ExactScan
                } else {
                    ExecutedStrategy::FilteredHnsw
                }
            }
        };

        let per_query: Vec<Vec<(usize, f32)>> = match executed {
            ExecutedStrategy::ExactScan => {
                self.exact_hits_batch(queries, params.k, mask.as_deref())
            }
            ExecutedStrategy::FilteredHnsw => {
                // Graph traversal is inherently per-query; the batch still
                // amortizes the mask evaluation above.
                let ef = params.ef.unwrap_or_else(|| default_ef(params.k));
                queries
                    .iter()
                    .map(|q| self.hnsw_hits(q, params.k, ef, mask.as_deref()))
                    .collect()
            }
        };

        Ok(per_query
            .into_iter()
            .map(|hits| PlannedSearch {
                hits: hits
                    .into_iter()
                    .map(|(o, d)| ScoredPoint {
                        id: self.ids[o],
                        score: self.config.distance.similarity_from_distance(d),
                    })
                    .collect(),
                executed,
                qualifying,
            })
            .collect())
    }

    /// Batched exact scan: one pass over the stored vectors scoring every
    /// query via [`Distance::score_batch`], then a per-query sort. Each
    /// query's result is bit-identical to [`Collection::exact_hits`].
    fn exact_hits_batch(
        &self,
        queries: &[&[f32]],
        k: usize,
        mask: Option<&[bool]>,
    ) -> Vec<Vec<(usize, f32)>> {
        // Quantized tier: run the shared sequential kernel per query.
        // Parity with the sequential path is then by construction, and
        // the coarse pass already reads ¼ the bytes the batched f32
        // kernel would, so the batch amortization matters less.
        if self.active_quant().is_some() {
            return queries
                .iter()
                .map(|q| self.exact_hits(q, k, mask))
                .collect();
        }
        let m = queries.len();
        let q_invs: Vec<f32> = queries.iter().map(|q| inv_norm(q)).collect();
        let mut scored: Vec<Vec<(usize, f32)>> = (0..m)
            .map(|_| Vec::with_capacity(self.vectors.len()))
            .collect();
        let mut row = vec![0.0f32; m];
        for (o, v) in self.vectors.iter().enumerate() {
            if mask.is_some_and(|mk| !mk[o]) {
                continue;
            }
            // Pull the next stored vector toward L1 while this one is
            // being scored; a pure hint, never affects results.
            if let Some(next) = self.vectors.get(o + 1) {
                crate::distance::prefetch_slice(next);
            }
            self.config
                .distance
                .score_batch(queries, &q_invs, v, self.inv_norms[o], &mut row);
            for (per_query, &d) in scored.iter_mut().zip(&row) {
                per_query.push((o, d));
            }
        }
        for per_query in &mut scored {
            // Equivalent to the sequential path's stable sort on distance
            // plus truncate: the input is in offset order, so the stable
            // sort's tie behavior IS the (distance, offset) total order —
            // which lets the batch select the top k in O(n) before
            // sorting only those k.
            top_k_by(per_query, k, |a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            });
        }
        scored
    }

    /// Batched [`Collection::knn_among`]: scores one candidate id list
    /// against `queries.len()` query vectors in a single pass. Ids are
    /// resolved to offsets **once** for the batch, each candidate vector
    /// is streamed through [`Distance::score_batch`] once, and results
    /// are bit-identical to calling [`Collection::knn_among`] per query.
    ///
    /// # Errors
    /// [`VecDbError::DimensionMismatch`] if any query has the wrong
    /// dimension.
    pub fn knn_among_batch(
        &self,
        queries: &[&[f32]],
        ids: &[PointId],
        k: usize,
    ) -> Result<Vec<Vec<ScoredPoint>>, VecDbError> {
        for query in queries {
            if query.len() != self.config.dim {
                return Err(VecDbError::DimensionMismatch {
                    expected: self.config.dim,
                    found: query.len(),
                });
            }
        }
        // Quantized tier: per-query calls of the shared sequential
        // kernel — parity by construction, coarse pass already ¼ the
        // memory traffic.
        if self.active_quant().is_some() {
            return queries.iter().map(|q| self.knn_among(q, ids, k)).collect();
        }
        let m = queries.len();
        // One id→offset resolution for the whole batch.
        let resolved: Vec<(PointId, usize)> = ids
            .iter()
            .filter_map(|&id| self.by_id.get(id).map(|o| (id, o)))
            .collect();
        let q_invs: Vec<f32> = queries.iter().map(|q| inv_norm(q)).collect();
        let mut scored: Vec<Vec<(PointId, f32)>> =
            (0..m).map(|_| Vec::with_capacity(resolved.len())).collect();
        let mut row = vec![0.0f32; m];
        for (idx, &(id, o)) in resolved.iter().enumerate() {
            // Candidate offsets are scattered, so the hardware stream
            // prefetcher can't follow them — hint the next candidate's
            // vector toward L1 while scoring this one.
            if let Some(&(_, next)) = resolved.get(idx + 1) {
                crate::distance::prefetch_slice(&self.vectors[next]);
            }
            self.config.distance.score_batch(
                queries,
                &q_invs,
                &self.vectors[o],
                self.inv_norms[o],
                &mut row,
            );
            for (per_query, &d) in scored.iter_mut().zip(&row) {
                per_query.push((id, d));
            }
        }
        Ok(scored
            .into_iter()
            .map(|mut per_query| {
                // Same (distance, id) total order as the sequential
                // `knn_among` sort; O(n) selection + O(k log k) sort
                // instead of a full O(n log n) sort per query.
                top_k_by(&mut per_query, k, |a, b| {
                    a.1.partial_cmp(&b.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                per_query
                    .into_iter()
                    .map(|(id, d)| ScoredPoint {
                        id,
                        score: self.config.distance.similarity_from_distance(d),
                    })
                    .collect()
            })
            .collect())
    }
}

/// Reduces `items` to its `k` smallest elements under `cmp`, sorted —
/// exactly the first `k` of a full sort by `cmp`, computed with an O(n)
/// partial selection instead of sorting the whole slice. `cmp` must be a
/// total order (callers tie-break equal distances by offset or id).
fn top_k_by<T, F>(items: &mut Vec<T>, k: usize, mut cmp: F)
where
    F: FnMut(&T, &T) -> std::cmp::Ordering,
{
    if items.len() > k && k > 0 {
        items.select_nth_unstable_by(k - 1, &mut cmp);
    }
    items.truncate(k);
    items.sort_by(cmp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn unit(angle: f32) -> Vec<f32> {
        vec![angle.cos(), angle.sin()]
    }

    fn collection_with_points(n: usize) -> Collection {
        let mut c = Collection::new(CollectionConfig::new(2));
        for i in 0..n {
            let angle = i as f32 * 0.01;
            let payload = Payload::from_pairs(&[
                ("lat", json!(i as f64 * 0.001)),
                ("lon", json!(-(i as f64) * 0.001)),
                ("city", json!(if i % 2 == 0 { "A" } else { "B" })),
            ]);
            c.insert(i as PointId, unit(angle), payload).unwrap();
        }
        c
    }

    #[test]
    fn insert_and_lookup() {
        let c = collection_with_points(10);
        assert_eq!(c.len(), 10);
        assert_eq!(c.payload(3).unwrap().get_f64("lat"), Some(0.003));
        assert!(c.payload(99).is_err());
        assert_eq!(c.vector(0).unwrap().len(), 2);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut c = Collection::new(CollectionConfig::new(4));
        let err = c.insert(0, vec![1.0; 3], Payload::new());
        assert!(matches!(err, Err(VecDbError::DimensionMismatch { .. })));
    }

    #[test]
    fn nan_rejected() {
        let mut c = Collection::new(CollectionConfig::new(2));
        let err = c.insert(0, vec![f32::NAN, 0.0], Payload::new());
        assert_eq!(err, Err(VecDbError::NonFiniteVector));
    }

    #[test]
    fn duplicate_id_rejected() {
        let mut c = Collection::new(CollectionConfig::new(2));
        c.insert(7, vec![1.0, 0.0], Payload::new()).unwrap();
        assert!(c.insert(7, vec![0.0, 1.0], Payload::new()).is_err());
    }

    #[test]
    fn unfiltered_search_finds_self() {
        let c = collection_with_points(200);
        let r = c.search(&unit(0.5), &SearchParams::top_k(1)).unwrap();
        assert_eq!(r[0].id, 50);
        assert!(r[0].score > 0.9999);
    }

    #[test]
    fn scores_descend() {
        let c = collection_with_points(100);
        let r = c.search(&unit(0.3), &SearchParams::top_k(10)).unwrap();
        assert!(r.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn filtered_search_respects_filter() {
        let c = collection_with_points(200);
        let f = Filter::MatchKeyword {
            key: "city".to_owned(),
            value: "A".to_owned(),
        };
        let r = c
            .search(&unit(0.31), &SearchParams::top_k(5).with_filter(f))
            .unwrap();
        assert_eq!(r.len(), 5);
        assert!(r.iter().all(|p| p.id % 2 == 0));
    }

    #[test]
    fn selective_filter_triggers_exact_and_is_correct() {
        let c = collection_with_points(500);
        // Geo filter matching only ~10 points (selective → exact path).
        let f = Filter::geo_box(0.0, -0.010, 0.010, 0.0);
        let r = c
            .search(&unit(0.0), &SearchParams::top_k(3).with_filter(f.clone()))
            .unwrap();
        assert_eq!(r.len(), 3);
        let qualifying = c.filter_ids(&f);
        assert!(r.iter().all(|p| qualifying.contains(&p.id)));
        // Exact top-1 under the filter is point 0 (closest angle to 0).
        assert_eq!(r[0].id, 0);
    }

    #[test]
    fn empty_filter_result_is_empty() {
        let c = collection_with_points(50);
        let f = Filter::MatchKeyword {
            key: "city".to_owned(),
            value: "Z".to_owned(),
        };
        let r = c
            .search(&unit(0.0), &SearchParams::top_k(5).with_filter(f))
            .unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn exact_flag_matches_hnsw_on_easy_data() {
        let c = collection_with_points(300);
        let q = unit(1.23);
        let approx = c.search(&q, &SearchParams::top_k(5)).unwrap();
        let exact = c
            .search(&q, &SearchParams::top_k(5).with_exact(true))
            .unwrap();
        assert_eq!(
            approx.iter().map(|p| p.id).collect::<Vec<_>>(),
            exact.iter().map(|p| p.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn explicit_strategies_execute_as_requested() {
        let c = collection_with_points(300);
        let f = Filter::geo_box(0.0, -0.3, 0.3, 0.0);
        let q = unit(0.2);
        let exact = c
            .search_planned(
                &q,
                &SearchParams::top_k(5)
                    .with_filter(f.clone())
                    .with_strategy(SearchStrategy::Exact),
            )
            .unwrap();
        assert_eq!(exact.executed, ExecutedStrategy::ExactScan);
        let hnsw = c
            .search_planned(
                &q,
                &SearchParams::top_k(5)
                    .with_filter(f.clone())
                    .with_strategy(SearchStrategy::Hnsw),
            )
            .unwrap();
        assert_eq!(hnsw.executed, ExecutedStrategy::FilteredHnsw);
        assert_eq!(exact.qualifying, c.filter_ids(&f).len());
        // Same answer set (equidistant ties may order differently).
        let mut a: Vec<_> = exact.hits.iter().map(|p| p.id).collect();
        let mut b: Vec<_> = hnsw.hits.iter().map(|p| p.id).collect();
        assert_eq!(a[0], b[0]);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn auto_strategy_reports_heuristic_choice() {
        let c = collection_with_points(500);
        // ~10 qualifying points out of 500 → below the 0.10 threshold.
        let narrow = Filter::geo_box(0.0, -0.010, 0.010, 0.0);
        let p = c
            .search_planned(&unit(0.0), &SearchParams::top_k(3).with_filter(narrow))
            .unwrap();
        assert_eq!(p.executed, ExecutedStrategy::ExactScan);
        // No filter → every point qualifies → HNSW.
        let p = c
            .search_planned(&unit(0.0), &SearchParams::top_k(3))
            .unwrap();
        assert_eq!(p.executed, ExecutedStrategy::FilteredHnsw);
        assert_eq!(p.qualifying, 500);
    }

    #[test]
    fn knn_among_scores_candidate_subset() {
        let c = collection_with_points(100);
        let ids: Vec<PointId> = vec![10, 20, 30, 999]; // 999 unknown → skipped
        let r = c.knn_among(&unit(0.2), &ids, 2).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].id, 20); // angle 0.20 exactly
        assert!(r[0].score >= r[1].score);
        // Wrong-length queries are rejected, not silently mis-scored.
        assert!(matches!(
            c.knn_among(&[1.0, 2.0, 3.0], &ids, 2),
            Err(VecDbError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn k_zero_returns_empty() {
        let c = collection_with_points(10);
        assert!(c
            .search(&unit(0.0), &SearchParams::top_k(0))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn search_batch_matches_sequential_search() {
        let c = collection_with_points(300);
        let owned: Vec<Vec<f32>> = (0..17).map(|i| unit(i as f32 * 0.13)).collect();
        let queries: Vec<&[f32]> = owned.iter().map(Vec::as_slice).collect();
        let filters = [
            None,
            Some(Filter::MatchKeyword {
                key: "city".to_owned(),
                value: "A".to_owned(),
            }),
        ];
        for filter in filters {
            for strategy in [
                SearchStrategy::Auto,
                SearchStrategy::Exact,
                SearchStrategy::Hnsw,
            ] {
                let mut params = SearchParams::top_k(7).with_strategy(strategy);
                if let Some(f) = filter.clone() {
                    params = params.with_filter(f);
                }
                let batched = c.search_batch(&queries, &params).unwrap();
                assert_eq!(batched.len(), queries.len());
                for (q, b) in queries.iter().zip(&batched) {
                    let single = c.search_planned(q, &params).unwrap();
                    assert_eq!(b.hits, single.hits, "{strategy:?}");
                    assert_eq!(b.executed, single.executed);
                    assert_eq!(b.qualifying, single.qualifying);
                }
            }
        }
    }

    #[test]
    fn search_batch_handles_ties_like_sequential() {
        // Identical vectors → identical scores; the batched exact scan
        // must keep the stable insertion-order tie-break of the
        // sequential path.
        let mut c = Collection::new(CollectionConfig::new(2));
        for id in 0..6u64 {
            c.insert(id, vec![1.0, 0.0], Payload::new()).unwrap();
        }
        let params = SearchParams::top_k(4).with_strategy(SearchStrategy::Exact);
        let queries: [&[f32]; 2] = [&[1.0, 0.0], &[0.6, 0.8]];
        let batched = c.search_batch(&queries, &params).unwrap();
        for (q, b) in queries.iter().zip(&batched) {
            assert_eq!(b.hits, c.search(q, &params).unwrap());
        }
        assert_eq!(
            batched[0].hits.iter().map(|h| h.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn search_batch_empty_inputs() {
        let c = collection_with_points(10);
        assert!(c
            .search_batch(&[], &SearchParams::top_k(3))
            .unwrap()
            .is_empty());
        let empty = Collection::new(CollectionConfig::new(2));
        let q = unit(0.1);
        let out = empty
            .search_batch(&[q.as_slice()], &SearchParams::top_k(3))
            .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].hits.is_empty());
        assert!(matches!(
            c.search_batch(&[&[1.0, 2.0, 3.0]], &SearchParams::top_k(1)),
            Err(VecDbError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn knn_among_batch_matches_sequential() {
        let c = collection_with_points(120);
        let ids: Vec<PointId> = (0..120).step_by(2).chain([999]).collect();
        let owned: Vec<Vec<f32>> = (0..9).map(|i| unit(0.07 * i as f32)).collect();
        let queries: Vec<&[f32]> = owned.iter().map(Vec::as_slice).collect();
        let batched = c.knn_among_batch(&queries, &ids, 5).unwrap();
        for (q, b) in queries.iter().zip(&batched) {
            assert_eq!(b, &c.knn_among(q, &ids, 5).unwrap());
        }
        assert!(matches!(
            c.knn_among_batch(&[&[0.0f32; 3] as &[f32]], &ids, 5),
            Err(VecDbError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn query_dim_checked() {
        let c = collection_with_points(10);
        assert!(matches!(
            c.search(&[1.0, 2.0, 3.0], &SearchParams::top_k(1)),
            Err(VecDbError::DimensionMismatch { .. })
        ));
    }
}

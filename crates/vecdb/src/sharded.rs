//! Sharded collections: hash-partitioned points across N inner
//! [`Collection`]s behind one search surface.
//!
//! This is the partitioned-collection design of distributed vector
//! stores (Qdrant shards, pgvector partitioned tables): each point lives
//! in exactly one shard chosen by a deterministic hash of its id, every
//! shard answers the query independently, and the per-shard top-k lists
//! are combined by a binary-heap k-way merge that dedups by point id.
//! Because the hash is deterministic and shards are disjoint, exact
//! search over a [`ShardedCollection`] returns bit-identical ids and
//! scores to the same search over one flat [`Collection`] (ties included
//! — the merge breaks equal scores by ascending id, matching the flat
//! exact scan over id-ordered insertions).

use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::collection::{Collection, CollectionConfig, ExecutedStrategy, PlannedSearch};
use crate::collection::{ScoredPoint, SearchParams};
use crate::db::CollectionHandle;
use crate::error::VecDbError;
use crate::payload::Filter;
use crate::PointId;

/// Deterministic shard routing: Fibonacci multiplicative hash of the
/// point id, reduced to `[0, shards)`. Stable across processes — no
/// `RandomState` — so snapshots and re-partitions agree.
#[must_use]
pub fn shard_of(id: PointId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    ((id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % shards.max(1)
}

/// Identity of one shard within a fixed-size shard set: "shard `shard`
/// of `shards`". Carried on the wire by cross-process shard servers so
/// a remote executor can verify which slice of the id space it owns
/// ([`ShardSpec::owns`] is [`shard_of`] applied to its own index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    /// Total number of shards in the set (≥ 1).
    pub shards: u32,
    /// This shard's index, in `[0, shards)`.
    pub shard: u32,
}

impl ShardSpec {
    /// A validated spec. Returns `None` when `shards == 0` or
    /// `shard >= shards`.
    #[must_use]
    pub fn new(shards: u32, shard: u32) -> Option<Self> {
        (shards >= 1 && shard < shards).then_some(Self { shards, shard })
    }

    /// Whether this shard owns `id` under deterministic hash routing.
    #[must_use]
    pub fn owns(&self, id: PointId) -> bool {
        shard_of(id, self.shards as usize) == self.shard as usize
    }
}

/// A [`PlannedSearch`] with per-shard detail attached.
#[derive(Debug, Clone)]
pub struct ShardedSearch {
    /// Merged top-k hits, best first.
    pub hits: Vec<ScoredPoint>,
    /// The strategy the shards executed ([`ExecutedStrategy::FilteredHnsw`]
    /// if *any* shard searched its graph — the approximate path dominates
    /// the result's exactness guarantee).
    pub executed: ExecutedStrategy,
    /// Total live points matching the filter, summed over shards.
    pub qualifying: usize,
    /// Candidates each shard contributed to the pre-merge pool (its own
    /// top-k length), aligned with shard index.
    pub per_shard_hits: Vec<usize>,
}

/// One entry of the k-way merge: ordered by score descending, ties by
/// ascending id (so the merge reproduces a flat exact scan over
/// id-ordered insertions).
struct MergeEntry {
    score: f32,
    id: PointId,
    shard: usize,
    pos: usize,
}

impl PartialEq for MergeEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for MergeEntry {}

impl PartialOrd for MergeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MergeEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher score wins; equal scores prefer the lower id.
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// Binary-heap k-way merge of per-shard top-k lists (each sorted best
/// first), deduplicating by point id. Returns the merged global top-k
/// plus how many candidates each shard contributed to the pool.
#[must_use]
pub fn merge_top_k(per_shard: &[Vec<ScoredPoint>], k: usize) -> (Vec<ScoredPoint>, Vec<usize>) {
    let contributed: Vec<usize> = per_shard.iter().map(Vec::len).collect();
    let mut heap: BinaryHeap<MergeEntry> = per_shard
        .iter()
        .enumerate()
        .filter_map(|(shard, hits)| {
            hits.first().map(|h| MergeEntry {
                score: h.score,
                id: h.id,
                shard,
                pos: 0,
            })
        })
        .collect();
    let mut seen: HashSet<PointId> = HashSet::with_capacity(k);
    let mut merged = Vec::with_capacity(k);
    while merged.len() < k {
        let Some(top) = heap.pop() else { break };
        // Shards are disjoint by construction, but the merge stays
        // correct for arbitrary (e.g. replicated) inputs: first
        // occurrence wins, duplicates are skipped.
        if seen.insert(top.id) {
            merged.push(ScoredPoint {
                id: top.id,
                score: top.score,
            });
        }
        let next = top.pos + 1;
        if let Some(h) = per_shard[top.shard].get(next) {
            heap.push(MergeEntry {
                score: h.score,
                id: h.id,
                shard: top.shard,
                pos: next,
            });
        }
    }
    (merged, contributed)
}

/// Batched counterpart of [`merge_top_k`]: consumes a `per_shard[s][q]`
/// matrix of per-shard, per-query top-k lists, transposes it by move
/// (no hit cloning), and merges each query's lists. Returns one
/// `(merged top-k, per-shard contribution counts)` pair per query —
/// the one transpose-and-merge every batched sharded backend shares.
#[must_use]
pub fn merge_top_k_batch(
    per_shard: Vec<Vec<Vec<ScoredPoint>>>,
    k: usize,
) -> Vec<(Vec<ScoredPoint>, Vec<usize>)> {
    let shards = per_shard.len();
    let n_queries = per_shard.first().map_or(0, Vec::len);
    let mut by_query: Vec<Vec<Vec<ScoredPoint>>> =
        (0..n_queries).map(|_| Vec::with_capacity(shards)).collect();
    for shard in per_shard {
        debug_assert_eq!(shard.len(), n_queries, "ragged per-shard batch");
        for (q, hits) in shard.into_iter().enumerate() {
            by_query[q].push(hits);
        }
    }
    by_query
        .into_iter()
        .map(|lists| merge_top_k(&lists, k))
        .collect()
}

/// N inner collections behind the same search surface as one
/// [`Collection`]. Writes route by [`shard_of`]; searches fan out over
/// every shard and merge.
///
/// Each shard is an ordinary [`CollectionHandle`], so per-shard readers
/// (e.g. one retrieval backend per shard) can lock and search shards
/// independently — the fan-out itself carries no extra synchronization.
pub struct ShardedCollection {
    config: CollectionConfig,
    shards: Vec<CollectionHandle>,
}

impl ShardedCollection {
    /// An empty sharded collection with `shards` partitions (at least 1).
    #[must_use]
    pub fn new(config: CollectionConfig, shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| {
                    CollectionHandle::new(parking_lot::RwLock::new(Collection::new(config.clone())))
                })
                .collect(),
            config,
        }
    }

    /// Re-partitions the live points of an existing collection into
    /// `shards` partitions (per-shard HNSW graphs are rebuilt on
    /// insertion).
    ///
    /// # Errors
    /// Propagates insertion failures (cannot happen for a well-formed
    /// source: ids are unique and vectors already validated).
    pub fn from_collection(source: &Collection, shards: usize) -> Result<Self, VecDbError> {
        let sharded = Self::new(source.config().clone(), shards);
        for (id, vector, payload) in source.iter_points() {
            let shard = &sharded.shards[shard_of(id, sharded.shards.len())];
            shard.write().insert(id, vector.to_vec(), payload.clone())?;
        }
        Ok(sharded)
    }

    /// The shared configuration of every shard.
    #[must_use]
    pub fn config(&self) -> &CollectionConfig {
        &self.config
    }

    /// Number of shards (≥ 1).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard handles, aligned with shard index. Per-shard consumers
    /// (retrieval backends, rebalancers) build on these.
    #[must_use]
    pub fn shards(&self) -> &[CollectionHandle] {
        &self.shards
    }

    /// The shard a point id routes to.
    #[must_use]
    pub fn shard_of(&self, id: PointId) -> usize {
        shard_of(id, self.shards.len())
    }

    /// Total live points across shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether every shard is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Inserts a point into its hash-routed shard.
    ///
    /// # Errors
    /// Same contract as [`Collection::insert`]; id uniqueness is global
    /// because routing is deterministic.
    pub fn insert(
        &self,
        id: PointId,
        vector: Vec<f32>,
        payload: crate::payload::Payload,
    ) -> Result<(), VecDbError> {
        self.shards[self.shard_of(id)]
            .write()
            .insert(id, vector, payload)
    }

    /// Soft-deletes a point from its shard.
    ///
    /// # Errors
    /// [`VecDbError::PointNotFound`] if no live point has this id.
    pub fn delete(&self, id: PointId) -> Result<(), VecDbError> {
        self.shards[self.shard_of(id)].write().delete(id)
    }

    /// Whether a live point with this id exists.
    #[must_use]
    pub fn contains(&self, id: PointId) -> bool {
        self.shards[self.shard_of(id)].read().contains(id)
    }

    /// Ids of all live points matching `filter`, ascending.
    #[must_use]
    pub fn filter_ids(&self, filter: &Filter) -> Vec<PointId> {
        let mut ids: Vec<PointId> = self
            .shards
            .iter()
            .flat_map(|s| s.read().filter_ids(filter))
            .collect();
        ids.sort_unstable();
        ids
    }

    /// k-NN search fanned out over every shard, merged to a global top-k.
    ///
    /// # Errors
    /// Propagates the first shard failure.
    pub fn search(
        &self,
        query: &[f32],
        params: &SearchParams,
    ) -> Result<Vec<ScoredPoint>, VecDbError> {
        self.search_sharded(query, params).map(|s| s.hits)
    }

    /// Like [`ShardedCollection::search`], reporting the merged execution
    /// metadata ([`PlannedSearch`]) with per-shard qualifying counts
    /// summed.
    ///
    /// # Errors
    /// Propagates the first shard failure.
    pub fn search_planned(
        &self,
        query: &[f32],
        params: &SearchParams,
    ) -> Result<PlannedSearch, VecDbError> {
        let s = self.search_sharded(query, params)?;
        Ok(PlannedSearch {
            hits: s.hits,
            executed: s.executed,
            qualifying: s.qualifying,
        })
    }

    /// The full fan-out/merge: per-shard [`Collection::search_planned`]
    /// executed in parallel on the shared [`crate::pool`] worker pool
    /// (a channel send per shard, not a thread spawn), heap-merged
    /// top-k, per-shard contribution counts.
    ///
    /// # Errors
    /// Propagates the first shard failure.
    pub fn search_sharded(
        &self,
        query: &[f32],
        params: &SearchParams,
    ) -> Result<ShardedSearch, VecDbError> {
        let planned: Vec<PlannedSearch> = crate::pool::global()
            .run_homed(
                self.shards.len(),
                |i| i,
                |i| self.shards[i].read().search_planned(query, params),
            )
            .into_iter()
            .collect::<Result<_, _>>()?;
        let mut per_shard: Vec<Vec<ScoredPoint>> = Vec::with_capacity(self.shards.len());
        let mut qualifying = 0;
        let mut executed = ExecutedStrategy::ExactScan;
        for p in planned {
            qualifying += p.qualifying;
            if p.executed == ExecutedStrategy::FilteredHnsw {
                executed = ExecutedStrategy::FilteredHnsw;
            }
            per_shard.push(p.hits);
        }
        let (hits, per_shard_hits) = merge_top_k(&per_shard, params.k);
        Ok(ShardedSearch {
            hits,
            executed,
            qualifying,
            per_shard_hits,
        })
    }

    /// Batched fan-out: every shard answers the whole batch through
    /// [`Collection::search_batch`] (one pooled job per shard, one pass
    /// over each shard's vectors for all queries), then each query's
    /// per-shard lists merge. Per-query results are bit-identical to
    /// [`ShardedCollection::search_sharded`].
    ///
    /// # Errors
    /// Propagates the first shard failure.
    pub fn search_batch_sharded(
        &self,
        queries: &[&[f32]],
        params: &SearchParams,
    ) -> Result<Vec<ShardedSearch>, VecDbError> {
        // per_shard[s][q]: shard s's planned answer to query q.
        let per_shard: Vec<Vec<PlannedSearch>> = crate::pool::global()
            .run_homed(
                self.shards.len(),
                |i| i,
                |i| self.shards[i].read().search_batch(queries, params),
            )
            .into_iter()
            .collect::<Result<_, _>>()?;
        // Split the plan metadata off per query, then hand the bare hit
        // matrix to the shared move-based transpose-and-merge.
        let mut qualifying = vec![0usize; queries.len()];
        let mut executed = vec![ExecutedStrategy::ExactScan; queries.len()];
        let hit_matrix: Vec<Vec<Vec<ScoredPoint>>> = per_shard
            .into_iter()
            .map(|shard| {
                shard
                    .into_iter()
                    .enumerate()
                    .map(|(q, p)| {
                        qualifying[q] += p.qualifying;
                        if p.executed == ExecutedStrategy::FilteredHnsw {
                            executed[q] = ExecutedStrategy::FilteredHnsw;
                        }
                        p.hits
                    })
                    .collect()
            })
            .collect();
        Ok(merge_top_k_batch(hit_matrix, params.k)
            .into_iter()
            .zip(qualifying.into_iter().zip(executed))
            .map(
                |((hits, per_shard_hits), (qualifying, executed))| ShardedSearch {
                    hits,
                    executed,
                    qualifying,
                    per_shard_hits,
                },
            )
            .collect())
    }

    /// Exact top-k over an explicit candidate list: ids route to their
    /// shards, each shard scores its slice, and the slices merge. Unknown
    /// and deleted ids are skipped, as in [`Collection::knn_among`].
    ///
    /// # Errors
    /// [`VecDbError::DimensionMismatch`] on a wrong-length query.
    pub fn knn_among(
        &self,
        query: &[f32],
        ids: &[PointId],
        k: usize,
    ) -> Result<Vec<ScoredPoint>, VecDbError> {
        let routed = self.route(ids);
        let per_shard: Vec<Vec<ScoredPoint>> = crate::pool::global()
            .run_homed(
                self.shards.len(),
                |i| i,
                |i| self.shards[i].read().knn_among(query, &routed[i], k),
            )
            .into_iter()
            .collect::<Result<_, _>>()?;
        Ok(merge_top_k(&per_shard, k).0)
    }

    /// Batched [`ShardedCollection::knn_among`]: candidate ids route to
    /// their shards once, each shard scores the whole batch with
    /// [`Collection::knn_among_batch`] on the shared pool, and each
    /// query's per-shard lists merge. Per-query results are bit-identical
    /// to the single-query path.
    ///
    /// # Errors
    /// [`VecDbError::DimensionMismatch`] on a wrong-length query.
    pub fn knn_among_batch(
        &self,
        queries: &[&[f32]],
        ids: &[PointId],
        k: usize,
    ) -> Result<Vec<Vec<ScoredPoint>>, VecDbError> {
        let routed = self.route(ids);
        // per_shard[s][q]: shard s's top-k for query q over its slice.
        let per_shard: Vec<Vec<Vec<ScoredPoint>>> = crate::pool::global()
            .run_homed(
                self.shards.len(),
                |i| i,
                |i| {
                    self.shards[i]
                        .read()
                        .knn_among_batch(queries, &routed[i], k)
                },
            )
            .into_iter()
            .collect::<Result<_, _>>()?;
        Ok(merge_top_k_batch(per_shard, k)
            .into_iter()
            .map(|(hits, _)| hits)
            .collect())
    }

    /// Routes candidate ids to their owning shards, preserving order
    /// within each shard.
    fn route(&self, ids: &[PointId]) -> Vec<Vec<PointId>> {
        let mut routed: Vec<Vec<PointId>> = vec![Vec::new(); self.shards.len()];
        for &id in ids {
            routed[self.shard_of(id)].push(id);
        }
        routed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::SearchStrategy;
    use crate::payload::Payload;
    use serde_json::json;

    fn unit(angle: f32) -> Vec<f32> {
        vec![angle.cos(), angle.sin()]
    }

    fn flat_and_sharded(n: usize, shards: usize) -> (Collection, ShardedCollection) {
        let mut flat = Collection::new(CollectionConfig::new(2));
        for i in 0..n {
            let angle = i as f32 * 0.01;
            let payload = Payload::from_pairs(&[
                ("lat", json!(i as f64 * 0.001)),
                ("lon", json!(-(i as f64) * 0.001)),
            ]);
            flat.insert(i as PointId, unit(angle), payload).unwrap();
        }
        let sharded = ShardedCollection::from_collection(&flat, shards).unwrap();
        (flat, sharded)
    }

    #[test]
    fn routing_is_deterministic_and_covers_all_shards() {
        for shards in [1, 2, 4, 8] {
            let hit: std::collections::HashSet<usize> =
                (0..1000u64).map(|id| shard_of(id, shards)).collect();
            assert_eq!(hit.len(), shards, "{shards} shards all populated");
            for id in 0..100u64 {
                assert_eq!(shard_of(id, shards), shard_of(id, shards));
            }
        }
    }

    #[test]
    fn repartition_preserves_membership() {
        let (flat, sharded) = flat_and_sharded(200, 4);
        assert_eq!(sharded.len(), flat.len());
        assert_eq!(sharded.shard_count(), 4);
        for id in 0..200u64 {
            assert!(sharded.contains(id));
        }
        let per_shard: Vec<usize> = sharded.shards().iter().map(|s| s.read().len()).collect();
        assert_eq!(per_shard.iter().sum::<usize>(), 200);
        assert!(per_shard.iter().all(|&n| n > 0), "no empty shard at n=200");
    }

    #[test]
    fn exact_search_matches_flat_collection() {
        let (flat, _) = flat_and_sharded(300, 1);
        for shards in [1, 2, 4, 8] {
            let sharded = ShardedCollection::from_collection(&flat, shards).unwrap();
            let params = SearchParams::top_k(7).with_strategy(SearchStrategy::Exact);
            let q = unit(1.1);
            let expect = flat.search(&q, &params).unwrap();
            let got = sharded.search(&q, &params).unwrap();
            assert_eq!(got, expect, "shards={shards}");
        }
    }

    #[test]
    fn filtered_search_and_filter_ids_match_flat() {
        let (flat, sharded) = flat_and_sharded(400, 4);
        let f = Filter::geo_box(0.0, -0.05, 0.05, 0.0);
        assert_eq!(sharded.filter_ids(&f), flat.filter_ids(&f));
        let params = SearchParams::top_k(5)
            .with_filter(f)
            .with_strategy(SearchStrategy::Exact);
        let q = unit(0.2);
        assert_eq!(
            sharded.search(&q, &params).unwrap(),
            flat.search(&q, &params).unwrap()
        );
    }

    #[test]
    fn duplicate_distance_ties_break_by_ascending_id() {
        // Five identical vectors → five identical scores. The flat exact
        // scan returns them in insertion (= id) order; the sharded merge
        // must reproduce that order across any shard count.
        let mut flat = Collection::new(CollectionConfig::new(2));
        for id in 0..5u64 {
            flat.insert(id, vec![1.0, 0.0], Payload::new()).unwrap();
        }
        let params = SearchParams::top_k(3).with_strategy(SearchStrategy::Exact);
        let expect = flat.search(&[1.0, 0.0], &params).unwrap();
        assert_eq!(
            expect.iter().map(|h| h.id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        for shards in [1, 2, 4, 8] {
            let sharded = ShardedCollection::from_collection(&flat, shards).unwrap();
            let got = sharded.search(&[1.0, 0.0], &params).unwrap();
            assert_eq!(got, expect, "shards={shards}");
        }
    }

    #[test]
    fn merge_dedups_replicated_inputs() {
        let a = vec![
            ScoredPoint { id: 1, score: 0.9 },
            ScoredPoint { id: 2, score: 0.5 },
        ];
        let b = vec![
            ScoredPoint { id: 1, score: 0.9 },
            ScoredPoint { id: 3, score: 0.7 },
        ];
        let (merged, contributed) = merge_top_k(&[a, b], 10);
        assert_eq!(
            merged.iter().map(|h| h.id).collect::<Vec<_>>(),
            vec![1, 3, 2]
        );
        assert_eq!(contributed, vec![2, 2]);
    }

    #[test]
    fn writes_route_and_report_per_shard() {
        let sharded = ShardedCollection::new(CollectionConfig::new(2), 4);
        for id in 0..40u64 {
            sharded
                .insert(id, unit(id as f32 * 0.1), Payload::new())
                .unwrap();
        }
        assert_eq!(sharded.len(), 40);
        sharded.delete(17).unwrap();
        assert!(!sharded.contains(17));
        assert_eq!(sharded.len(), 39);
        assert!(sharded.delete(17).is_err());
        let s = sharded
            .search_sharded(
                &unit(0.5),
                &SearchParams::top_k(5).with_strategy(SearchStrategy::Exact),
            )
            .unwrap();
        assert_eq!(s.hits.len(), 5);
        assert_eq!(s.qualifying, 39);
        assert_eq!(s.per_shard_hits.len(), 4);
        assert!(s.per_shard_hits.iter().sum::<usize>() >= 5);
    }

    #[test]
    fn batched_sharded_search_matches_single_query_path() {
        let (flat, _) = flat_and_sharded(250, 1);
        let owned: Vec<Vec<f32>> = (0..13).map(|i| unit(0.11 * i as f32)).collect();
        let queries: Vec<&[f32]> = owned.iter().map(Vec::as_slice).collect();
        let params = SearchParams::top_k(6).with_strategy(SearchStrategy::Exact);
        for shards in [1, 2, 4] {
            let sharded = ShardedCollection::from_collection(&flat, shards).unwrap();
            let batched = sharded.search_batch_sharded(&queries, &params).unwrap();
            assert_eq!(batched.len(), queries.len());
            for (q, b) in queries.iter().zip(&batched) {
                let single = sharded.search_sharded(q, &params).unwrap();
                assert_eq!(b.hits, single.hits, "shards={shards}");
                assert_eq!(b.qualifying, single.qualifying);
                assert_eq!(b.per_shard_hits, single.per_shard_hits);
            }
        }
    }

    #[test]
    fn batched_knn_among_matches_single_query_path() {
        let (flat, sharded) = flat_and_sharded(180, 4);
        let ids: Vec<PointId> = (0..180).step_by(2).collect();
        let owned: Vec<Vec<f32>> = (0..9).map(|i| unit(0.2 * i as f32)).collect();
        let queries: Vec<&[f32]> = owned.iter().map(Vec::as_slice).collect();
        let batched = sharded.knn_among_batch(&queries, &ids, 5).unwrap();
        for (q, b) in queries.iter().zip(&batched) {
            assert_eq!(b, &sharded.knn_among(q, &ids, 5).unwrap());
            assert_eq!(b, &flat.knn_among(q, &ids, 5).unwrap());
        }
    }

    #[test]
    fn knn_among_matches_flat() {
        let (flat, sharded) = flat_and_sharded(150, 4);
        let ids: Vec<PointId> = (0..150).step_by(3).collect();
        let q = unit(0.8);
        assert_eq!(
            sharded.knn_among(&q, &ids, 6).unwrap(),
            flat.knn_among(&q, &ids, 6).unwrap()
        );
        assert!(sharded.knn_among(&[1.0], &ids, 6).is_err());
    }
}

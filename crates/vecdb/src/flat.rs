//! Exact (brute-force) vector search.

use crate::distance::{inv_norm, Distance};

/// A flat index: exact k-NN by scanning every vector.
///
/// The ground-truth comparator for HNSW recall measurements, and the
/// execution strategy a [`crate::Collection`] picks when a filter is
/// highly selective. Inverse norms are cached at push time, so cosine
/// scans run as fused dot products like the collection's exact path.
#[derive(Debug, Default)]
pub struct FlatIndex {
    vectors: Vec<Vec<f32>>,
    inv_norms: Vec<f32>,
    distance: Distance,
}

impl FlatIndex {
    /// An empty flat index.
    #[must_use]
    pub fn new(distance: Distance) -> Self {
        Self {
            vectors: Vec::new(),
            inv_norms: Vec::new(),
            distance,
        }
    }

    /// Appends a vector, returning its internal offset.
    pub fn push(&mut self, v: Vec<f32>) -> usize {
        self.inv_norms.push(inv_norm(&v));
        self.vectors.push(v);
        self.vectors.len() - 1
    }

    /// Number of vectors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Vector at an offset.
    #[must_use]
    pub fn get(&self, offset: usize) -> Option<&[f32]> {
        self.vectors.get(offset).map(Vec::as_slice)
    }

    /// Exact top-k by distance over offsets satisfying `mask` (`None`
    /// means all). Returns `(offset, distance)` sorted ascending.
    #[must_use]
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        mask: Option<&dyn Fn(usize) -> bool>,
    ) -> Vec<(usize, f32)> {
        let q_inv = inv_norm(query);
        let mut scored: Vec<(usize, f32)> = self
            .vectors
            .iter()
            .enumerate()
            .filter(|(i, _)| mask.is_none_or(|m| m(*i)))
            .map(|(i, v)| {
                (
                    i,
                    self.distance
                        .distance_normed(query, q_inv, v, self.inv_norms[i]),
                )
            })
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_returns_nearest_sorted() {
        let mut idx = FlatIndex::new(Distance::Euclid);
        idx.push(vec![0.0, 0.0]);
        idx.push(vec![1.0, 0.0]);
        idx.push(vec![5.0, 5.0]);
        let r = idx.search(&[0.9, 0.0], 2, None);
        assert_eq!(r[0].0, 1);
        assert_eq!(r[1].0, 0);
    }

    #[test]
    fn mask_restricts_candidates() {
        let mut idx = FlatIndex::new(Distance::Euclid);
        idx.push(vec![0.0]);
        idx.push(vec![1.0]);
        idx.push(vec![2.0]);
        let only_even = |i: usize| i.is_multiple_of(2);
        let r = idx.search(&[1.1], 3, Some(&only_even));
        let ids: Vec<usize> = r.iter().map(|x| x.0).collect();
        assert_eq!(ids, vec![2, 0]);
    }

    #[test]
    fn k_zero_and_empty() {
        let idx = FlatIndex::new(Distance::Cosine);
        assert!(idx.search(&[1.0], 5, None).is_empty());
    }
}

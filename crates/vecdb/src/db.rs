//! The database: named collections behind locks, with snapshots.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::collection::{Collection, CollectionConfig};
use crate::error::VecDbError;

/// A handle to a collection, shared across threads.
pub type CollectionHandle = Arc<RwLock<Collection>>;

/// An embedded vector database: a registry of named collections.
///
/// Thread-safe: collections can be searched concurrently (read locks) and
/// written exclusively (write locks). This mirrors how SemaSK's data-prep
/// pipeline loads a collection once and the query processor then reads it
/// concurrently.
#[derive(Default)]
pub struct VectorDb {
    collections: RwLock<HashMap<String, CollectionHandle>>,
}

impl VectorDb {
    /// An empty database.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a collection. Errors if the name is taken.
    pub fn create_collection(
        &self,
        name: &str,
        config: CollectionConfig,
    ) -> Result<CollectionHandle, VecDbError> {
        let mut map = self.collections.write();
        if map.contains_key(name) {
            return Err(VecDbError::CollectionExists {
                name: name.to_owned(),
            });
        }
        let handle = Arc::new(RwLock::new(Collection::new(config)));
        map.insert(name.to_owned(), Arc::clone(&handle));
        Ok(handle)
    }

    /// Fetches a collection handle.
    pub fn collection(&self, name: &str) -> Result<CollectionHandle, VecDbError> {
        self.collections
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| VecDbError::CollectionNotFound {
                name: name.to_owned(),
            })
    }

    /// Drops a collection.
    pub fn drop_collection(&self, name: &str) -> Result<(), VecDbError> {
        self.collections
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| VecDbError::CollectionNotFound {
                name: name.to_owned(),
            })
    }

    /// Names of all collections, sorted.
    #[must_use]
    pub fn list_collections(&self) -> Vec<String> {
        let mut names: Vec<String> = self.collections.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Writes a collection snapshot as JSON.
    pub fn snapshot_collection(&self, name: &str, path: &Path) -> Result<(), VecDbError> {
        let handle = self.collection(name)?;
        let guard = handle.read();
        let json = serde_json::to_string(&*guard).map_err(|e| VecDbError::Snapshot {
            cause: e.to_string(),
        })?;
        std::fs::write(path, json).map_err(|e| VecDbError::Snapshot {
            cause: e.to_string(),
        })
    }

    /// Loads a collection snapshot from JSON, registering it under `name`.
    pub fn restore_collection(
        &self,
        name: &str,
        path: &Path,
    ) -> Result<CollectionHandle, VecDbError> {
        let data = std::fs::read_to_string(path).map_err(|e| VecDbError::Snapshot {
            cause: e.to_string(),
        })?;
        let collection: Collection =
            serde_json::from_str(&data).map_err(|e| VecDbError::Snapshot {
                cause: e.to_string(),
            })?;
        let mut map = self.collections.write();
        if map.contains_key(name) {
            return Err(VecDbError::CollectionExists {
                name: name.to_owned(),
            });
        }
        let handle = Arc::new(RwLock::new(collection));
        map.insert(name.to_owned(), Arc::clone(&handle));
        Ok(handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::SearchParams;
    use crate::payload::Payload;

    #[test]
    fn create_get_drop() {
        let db = VectorDb::new();
        db.create_collection("pois", CollectionConfig::new(4))
            .unwrap();
        assert!(db.collection("pois").is_ok());
        assert_eq!(db.list_collections(), vec!["pois".to_owned()]);
        assert!(db
            .create_collection("pois", CollectionConfig::new(4))
            .is_err());
        db.drop_collection("pois").unwrap();
        assert!(db.collection("pois").is_err());
        assert!(db.drop_collection("pois").is_err());
    }

    #[test]
    fn concurrent_reads() {
        let db = VectorDb::new();
        let h = db.create_collection("c", CollectionConfig::new(2)).unwrap();
        {
            let mut c = h.write();
            for i in 0..100u64 {
                let a = i as f32 * 0.05;
                c.insert(i, vec![a.cos(), a.sin()], Payload::new()).unwrap();
            }
        }
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = db.collection("c").unwrap();
                std::thread::spawn(move || {
                    let c = h.read();
                    let q = [(t as f32 * 0.7).cos(), (t as f32 * 0.7).sin()];
                    c.search(&q, &SearchParams::top_k(5)).unwrap().len()
                })
            })
            .collect();
        for th in handles {
            assert_eq!(th.join().unwrap(), 5);
        }
    }

    #[test]
    fn snapshot_roundtrip() {
        let dir = std::env::temp_dir().join("vecdb_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.json");

        let db = VectorDb::new();
        let h = db.create_collection("c", CollectionConfig::new(3)).unwrap();
        {
            let mut c = h.write();
            for i in 0..20u64 {
                c.insert(i, vec![i as f32, 0.0, 1.0], Payload::new())
                    .unwrap();
            }
        }
        db.snapshot_collection("c", &path).unwrap();

        let db2 = VectorDb::new();
        let h2 = db2.restore_collection("c2", &path).unwrap();
        let c2 = h2.read();
        assert_eq!(c2.len(), 20);
        let r = c2
            .search(&[5.0, 0.0, 1.0], &SearchParams::top_k(1).with_exact(true))
            .unwrap();
        assert_eq!(r[0].id, 5);
        std::fs::remove_file(&path).ok();
    }
}

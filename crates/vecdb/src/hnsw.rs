//! Hierarchical Navigable Small World graphs (Malkov & Yashunin, TPAMI
//! 2020) — the approximate nearest-neighbour algorithm behind Qdrant's
//! (and therefore SemaSK's) filtering step.
//!
//! The index stores only graph links; vectors live in the owning
//! [`crate::Collection`] and are passed into each call, keeping the two
//! halves independently testable.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::distance::{inv_norm, Distance};
use concepts_free_hash::{mix, unit_float};

/// Tiny local copy of the deterministic hash helpers (kept dependency-free
/// on purpose: `vecdb` must not depend on the semantics crates).
mod concepts_free_hash {
    pub fn mix(values: &[u64]) -> u64 {
        let mut h = 0x9e37_79b9_7f4a_7c15u64;
        for &v in values {
            h ^= v;
            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
            h = h.rotate_left(31);
        }
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^= h >> 33;
        h
    }
    pub fn unit_float(h: u64) -> f64 {
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// HNSW build/search parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HnswConfig {
    /// Max links per node on layers ≥ 1.
    pub m: usize,
    /// Max links per node on layer 0 (usually `2 * m`).
    pub m0: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Seed for the (deterministic) level generator.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        Self {
            m: 16,
            m0: 32,
            ef_construction: 128,
            seed: 0x5eed,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct NodeLinks {
    /// Highest layer this node appears on.
    level: usize,
    /// `neighbors[l]` = adjacent node offsets on layer `l` (0 ≤ l ≤ level).
    neighbors: Vec<Vec<u32>>,
}

/// Candidate ordered by distance (min-heap via reversed compare).
#[derive(PartialEq)]
struct Near(f32, usize);
impl Eq for Near {}
impl PartialOrd for Near {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Near {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.partial_cmp(&self.0).unwrap_or(Ordering::Equal)
    }
}

/// Result ordered by distance (max-heap, natural compare).
#[derive(PartialEq)]
struct Far(f32, usize);
impl Eq for Far {}
impl PartialOrd for Far {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Far {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).unwrap_or(Ordering::Equal)
    }
}

/// An HNSW graph over externally-stored vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HnswIndex {
    config: HnswConfig,
    distance: Distance,
    nodes: Vec<NodeLinks>,
    entry: Option<usize>,
    top_level: usize,
}

impl HnswIndex {
    /// An empty index.
    #[must_use]
    pub fn new(distance: Distance, config: HnswConfig) -> Self {
        Self {
            config,
            distance,
            nodes: Vec::new(),
            entry: None,
            top_level: 0,
        }
    }

    /// Number of indexed nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &HnswConfig {
        &self.config
    }

    /// Deterministic level for the node at `offset`: geometric with ratio
    /// `1/e^(1/ln m)`-ish — the standard `floor(-ln(U) · mL)` with
    /// `mL = 1 / ln(m)`.
    fn gen_level(&self, offset: usize) -> usize {
        let ml = 1.0 / (self.config.m as f64).ln();
        let u = unit_float(mix(&[self.config.seed, offset as u64])).max(f64::MIN_POSITIVE);
        ((-u.ln()) * ml).floor() as usize
    }

    /// Inserts the vector at `vectors[offset]`. Offsets must be inserted
    /// in increasing order (`offset == self.len()`). `inv_norms` carries
    /// the cached inverse L2 norm per offset (aligned with `vectors`),
    /// letting every cosine comparison run as one fused dot product.
    pub fn insert(&mut self, offset: usize, vectors: &[Vec<f32>], inv_norms: &[f32]) {
        debug_assert_eq!(offset, self.nodes.len(), "insert offsets must be dense");
        let level = self.gen_level(offset);
        self.nodes.push(NodeLinks {
            level,
            neighbors: vec![Vec::new(); level + 1],
        });
        let Some(mut ep) = self.entry else {
            self.entry = Some(offset);
            self.top_level = level;
            return;
        };
        let q = &vectors[offset];
        let q_inv = inv_norms[offset];

        // Greedy descent through layers above the new node's level.
        let mut l = self.top_level;
        while l > level {
            ep = self.greedy_closest(q, q_inv, ep, l, vectors, inv_norms);
            l -= 1;
        }

        // Beam search + connect from min(level, top_level) down to 0.
        let mut eps = vec![ep];
        let start = level.min(self.top_level);
        for layer in (0..=start).rev() {
            let cands = self.search_layer(
                q,
                q_inv,
                &eps,
                self.config.ef_construction,
                layer,
                vectors,
                inv_norms,
                None,
            );
            let m_max = if layer == 0 {
                self.config.m0
            } else {
                self.config.m
            };
            let selected = self.select_neighbors(&cands, m_max, vectors, inv_norms);
            for &(_, n) in &selected {
                self.nodes[offset].neighbors[layer].push(n as u32);
                self.nodes[n].neighbors[layer].push(offset as u32);
                // Prune the neighbour if it now exceeds its budget.
                if self.nodes[n].neighbors[layer].len() > m_max {
                    self.prune(n, layer, m_max, vectors, inv_norms);
                }
            }
            eps = cands.iter().map(|&(_, n)| n).collect();
            if eps.is_empty() {
                eps = vec![ep];
            }
        }

        if level > self.top_level {
            self.top_level = level;
            self.entry = Some(offset);
        }
    }

    fn prune(
        &mut self,
        node: usize,
        layer: usize,
        m_max: usize,
        vectors: &[Vec<f32>],
        inv_norms: &[f32],
    ) {
        let v = &vectors[node];
        let v_inv = inv_norms[node];
        let mut cands: Vec<(f32, usize)> = self.nodes[node].neighbors[layer]
            .iter()
            .map(|&n| {
                let n = n as usize;
                (
                    self.distance
                        .distance_normed(v, v_inv, &vectors[n], inv_norms[n]),
                    n,
                )
            })
            .collect();
        cands.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(Ordering::Equal));
        let selected = self.select_neighbors(&cands, m_max, vectors, inv_norms);
        self.nodes[node].neighbors[layer] = selected.iter().map(|&(_, n)| n as u32).collect();
    }

    /// Greedy single-entry descent on one layer.
    #[allow(clippy::too_many_arguments)]
    fn greedy_closest(
        &self,
        q: &[f32],
        q_inv: f32,
        mut ep: usize,
        layer: usize,
        vectors: &[Vec<f32>],
        inv_norms: &[f32],
    ) -> usize {
        let mut best = self
            .distance
            .distance_normed(q, q_inv, &vectors[ep], inv_norms[ep]);
        loop {
            let mut improved = false;
            for &n in &self.nodes[ep].neighbors[layer] {
                let d = self.distance.distance_normed(
                    q,
                    q_inv,
                    &vectors[n as usize],
                    inv_norms[n as usize],
                );
                if d < best {
                    best = d;
                    ep = n as usize;
                    improved = true;
                }
            }
            if !improved {
                return ep;
            }
        }
    }

    /// Beam search on one layer. Returns up to `ef` nodes sorted by
    /// distance ascending. `accept` restricts which nodes may enter the
    /// *result* set (the graph is still traversed through non-matching
    /// nodes, the standard filtered-HNSW strategy).
    #[allow(clippy::too_many_arguments)]
    fn search_layer(
        &self,
        q: &[f32],
        q_inv: f32,
        eps: &[usize],
        ef: usize,
        layer: usize,
        vectors: &[Vec<f32>],
        inv_norms: &[f32],
        accept: Option<&dyn Fn(usize) -> bool>,
    ) -> Vec<(f32, usize)> {
        let mut visited = vec![false; self.nodes.len()];
        let mut candidates: BinaryHeap<Near> = BinaryHeap::new();
        let mut results: BinaryHeap<Far> = BinaryHeap::new();

        for &ep in eps {
            if visited[ep] {
                continue;
            }
            visited[ep] = true;
            let d = self
                .distance
                .distance_normed(q, q_inv, &vectors[ep], inv_norms[ep]);
            candidates.push(Near(d, ep));
            if accept.is_none_or(|a| a(ep)) {
                results.push(Far(d, ep));
            }
        }
        while let Some(Near(d, c)) = candidates.pop() {
            let worst = results.peek().map_or(f32::INFINITY, |f| f.0);
            if d > worst && results.len() >= ef {
                break;
            }
            for &n in &self.nodes[c].neighbors[layer] {
                let n = n as usize;
                if visited[n] {
                    continue;
                }
                visited[n] = true;
                let dn = self
                    .distance
                    .distance_normed(q, q_inv, &vectors[n], inv_norms[n]);
                let worst = results.peek().map_or(f32::INFINITY, |f| f.0);
                if dn < worst || results.len() < ef {
                    candidates.push(Near(dn, n));
                    if accept.is_none_or(|a| a(n)) {
                        results.push(Far(dn, n));
                        if results.len() > ef {
                            results.pop();
                        }
                    }
                }
            }
        }
        let mut out: Vec<(f32, usize)> = results.into_iter().map(|Far(d, n)| (d, n)).collect();
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(Ordering::Equal));
        out
    }

    /// Heuristic neighbour selection (Algorithm 4 of the paper): prefer
    /// candidates that are closer to the query than to any already
    /// selected neighbour, which keeps links spread out.
    fn select_neighbors(
        &self,
        cands: &[(f32, usize)],
        m: usize,
        vectors: &[Vec<f32>],
        inv_norms: &[f32],
    ) -> Vec<(f32, usize)> {
        let mut selected: Vec<(f32, usize)> = Vec::with_capacity(m);
        let mut skipped: Vec<(f32, usize)> = Vec::new();
        for &(d, c) in cands {
            if selected.len() >= m {
                break;
            }
            let dominated = selected.iter().any(|&(_, s)| {
                self.distance
                    .distance_normed(&vectors[c], inv_norms[c], &vectors[s], inv_norms[s])
                    < d
            });
            if dominated {
                skipped.push((d, c));
            } else {
                selected.push((d, c));
            }
        }
        // keepPrunedConnections: top up from skipped to reach m.
        for &(d, c) in &skipped {
            if selected.len() >= m {
                break;
            }
            selected.push((d, c));
        }
        selected
    }

    /// k-NN search: returns up to `k` `(offset, distance)` pairs sorted by
    /// distance ascending. `ef` is the layer-0 beam width (clamped to
    /// ≥ k). `inv_norms` carries the cached inverse norms aligned with
    /// `vectors` (the query's own norm is derived once per search).
    /// `accept` optionally filters which offsets may be returned.
    #[must_use]
    pub fn search(
        &self,
        q: &[f32],
        k: usize,
        ef: usize,
        vectors: &[Vec<f32>],
        inv_norms: &[f32],
        accept: Option<&dyn Fn(usize) -> bool>,
    ) -> Vec<(usize, f32)> {
        let Some(mut ep) = self.entry else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        let q_inv = inv_norm(q);
        for layer in (1..=self.top_level).rev() {
            ep = self.greedy_closest(q, q_inv, ep, layer, vectors, inv_norms);
        }
        let ef = ef.max(k);
        let found = self.search_layer(q, q_inv, &[ep], ef, 0, vectors, inv_norms, accept);
        found.into_iter().take(k).map(|(d, n)| (n, d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random vector for tests.
    fn pseudo_vec(seed: u64, dim: usize) -> Vec<f32> {
        (0..dim)
            .map(|i| (unit_float(mix(&[seed, i as u64])) * 2.0 - 1.0) as f32)
            .collect()
    }

    fn norms(vectors: &[Vec<f32>]) -> Vec<f32> {
        vectors.iter().map(|v| inv_norm(v)).collect()
    }

    fn build(n: usize, dim: usize) -> (HnswIndex, Vec<Vec<f32>>) {
        let vectors: Vec<Vec<f32>> = (0..n).map(|i| pseudo_vec(i as u64, dim)).collect();
        let inv = norms(&vectors);
        let mut idx = HnswIndex::new(Distance::Euclid, HnswConfig::default());
        for i in 0..n {
            idx.insert(i, &vectors, &inv);
        }
        (idx, vectors)
    }

    fn brute(q: &[f32], vectors: &[Vec<f32>], k: usize) -> Vec<usize> {
        let mut all: Vec<(f32, usize)> = vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (Distance::Euclid.distance(q, v), i))
            .collect();
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        all[..k].iter().map(|&(_, i)| i).collect()
    }

    #[test]
    fn empty_and_single() {
        let idx = HnswIndex::new(Distance::Euclid, HnswConfig::default());
        assert!(idx.search(&[0.0; 8], 3, 10, &[], &[], None).is_empty());
        let vectors = vec![pseudo_vec(7, 8)];
        let inv = norms(&vectors);
        let mut idx = HnswIndex::new(Distance::Euclid, HnswConfig::default());
        idx.insert(0, &vectors, &inv);
        let r = idx.search(&vectors[0], 1, 10, &vectors, &inv, None);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].0, 0);
    }

    #[test]
    fn exact_match_found_first() {
        let (idx, vectors) = build(300, 16);
        let inv = norms(&vectors);
        for probe in [0usize, 57, 123, 299] {
            let r = idx.search(&vectors[probe], 1, 64, &vectors, &inv, None);
            assert_eq!(r[0].0, probe, "probe {probe}");
            assert!(r[0].1 < 1e-6);
        }
    }

    #[test]
    fn recall_at_10_is_high() {
        let (idx, vectors) = build(1000, 24);
        let mut hits = 0usize;
        let mut total = 0usize;
        for qi in 0..50 {
            let q = pseudo_vec(10_000 + qi, 24);
            let truth = brute(&q, &vectors, 10);
            let got: Vec<usize> = idx
                .search(&q, 10, 128, &vectors, &norms(&vectors), None)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            hits += truth.iter().filter(|t| got.contains(t)).count();
            total += truth.len();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall > 0.9, "recall@10 = {recall}");
    }

    #[test]
    fn results_sorted_by_distance() {
        let (idx, vectors) = build(200, 8);
        let q = pseudo_vec(555, 8);
        let r = idx.search(&q, 20, 64, &vectors, &norms(&vectors), None);
        assert!(r.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn filtered_search_respects_predicate() {
        let (idx, vectors) = build(500, 16);
        let q = pseudo_vec(777, 16);
        let accept = |i: usize| i.is_multiple_of(3);
        let r = idx.search(&q, 10, 128, &vectors, &norms(&vectors), Some(&accept));
        assert!(!r.is_empty());
        assert!(r.iter().all(|&(i, _)| i % 3 == 0));
    }

    #[test]
    fn filtered_recall_reasonable() {
        let (idx, vectors) = build(600, 16);
        let accept = |i: usize| i.is_multiple_of(2);
        let mut hits = 0;
        let mut total = 0;
        for qi in 0..30 {
            let q = pseudo_vec(40_000 + qi, 16);
            let mut truth: Vec<(f32, usize)> = vectors
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == 0)
                .map(|(i, v)| (Distance::Euclid.distance(&q, v), i))
                .collect();
            truth.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let truth: Vec<usize> = truth[..5].iter().map(|&(_, i)| i).collect();
            let got: Vec<usize> = idx
                .search(&q, 5, 128, &vectors, &norms(&vectors), Some(&accept))
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            hits += truth.iter().filter(|t| got.contains(t)).count();
            total += truth.len();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall > 0.8, "filtered recall = {recall}");
    }

    #[test]
    fn deterministic_build_and_search() {
        let (a, va) = build(300, 12);
        let (b, vb) = build(300, 12);
        assert_eq!(va, vb);
        let q = pseudo_vec(9, 12);
        let ra = a.search(&q, 10, 50, &va, &norms(&va), None);
        let rb = b.search(&q, 10, 50, &vb, &norms(&vb), None);
        assert_eq!(ra, rb);
    }

    #[test]
    fn higher_ef_does_not_reduce_recall() {
        let (idx, vectors) = build(800, 16);
        let mut recall_lo = 0usize;
        let mut recall_hi = 0usize;
        for qi in 0..25 {
            let q = pseudo_vec(70_000 + qi, 16);
            let truth = brute(&q, &vectors, 10);
            let inv = norms(&vectors);
            let lo: Vec<usize> = idx
                .search(&q, 10, 10, &vectors, &inv, None)
                .iter()
                .map(|x| x.0)
                .collect();
            let hi: Vec<usize> = idx
                .search(&q, 10, 256, &vectors, &inv, None)
                .iter()
                .map(|x| x.0)
                .collect();
            recall_lo += truth.iter().filter(|t| lo.contains(t)).count();
            recall_hi += truth.iter().filter(|t| hi.contains(t)).count();
        }
        assert!(recall_hi >= recall_lo, "lo={recall_lo} hi={recall_hi}");
    }
}

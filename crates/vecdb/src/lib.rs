//! # vecdb — an embedded vector database
//!
//! Substitute for the Qdrant instance the paper uses to store POI
//! embeddings. The paper relies on exactly two Qdrant capabilities, both
//! implemented here natively:
//!
//! - **approximate k-NN over embeddings** via an [`hnsw::HnswIndex`]
//!   (Malkov & Yashunin's Hierarchical Navigable Small World graphs, the
//!   same algorithm Qdrant runs), and
//! - **payload filtering** — restricting search to points whose JSON
//!   payload satisfies a filter; SemaSK uses a geo bounding-box filter
//!   for the query range `q.r`.
//!
//! A [`Collection`] owns vectors + payloads + the HNSW graph and picks a
//! query strategy the way Qdrant does: when a filter is so selective that
//! few points qualify, it brute-force scans the candidates (exact); when
//! the filter is broad, it runs filtered HNSW search (approximate).
//! [`VectorDb`] manages named collections behind `parking_lot` locks and
//! supports JSON snapshot persistence.

#![warn(missing_docs)]

pub mod collection;
pub mod db;
pub mod distance;
pub mod error;
pub mod flat;
pub mod fsst;
pub mod hnsw;
pub mod learned;
pub mod payload;
pub mod pool;
pub mod quant;
pub mod sharded;

pub use collection::{
    default_ef, Collection, CollectionConfig, CollectionStats, ExecutedStrategy, MemoryFootprint,
    PlannedSearch, ScoredPoint, SearchParams, SearchStrategy, AUTO_QUANT_THRESHOLD,
};
pub use db::{CollectionHandle, VectorDb};
pub use distance::{inv_norm, Distance};
pub use error::VecDbError;
pub use flat::FlatIndex;
pub use fsst::{CompressedStrings, SymbolTable};
pub use hnsw::{HnswConfig, HnswIndex};
pub use learned::LearnedIdIndex;
pub use payload::{Filter, Payload, PayloadStore};
pub use pool::WorkerPool;
pub use quant::{QuantizedVectors, ScoringTier};
pub use sharded::{
    merge_top_k, merge_top_k_batch, shard_of, ShardSpec, ShardedCollection, ShardedSearch,
};

/// Id of a point within a collection (caller-assigned, e.g. the
/// `ObjectId` of a POI).
pub type PointId = u64;

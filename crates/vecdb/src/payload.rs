//! Point payloads, payload filters, and the payload storage tier.
//!
//! Payloads are JSON objects attached to points, as in Qdrant. Filters
//! are a small condition language evaluated against payloads; SemaSK uses
//! [`Filter::GeoBoundingBox`] to implement the query range.
//!
//! [`PayloadStore`] is the storage seam: in plain mode it is a
//! `Vec<Payload>`; in compressed mode long text fields are split out of
//! each payload into an FSST arena ([`crate::fsst`]) and the filter
//! path evaluates against the remaining *skeleton* (geo coordinates,
//! numbers, short strings) — a filter never decompresses text unless it
//! explicitly references a compressed field.

use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::fsst::{CompressedStrings, SymbolTable};

/// A JSON-object payload attached to a point.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Payload(pub serde_json::Map<String, Value>);

impl Payload {
    /// An empty payload.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a payload from key/value pairs.
    #[must_use]
    pub fn from_pairs(pairs: &[(&str, Value)]) -> Self {
        let mut m = serde_json::Map::new();
        for (k, v) in pairs {
            m.insert((*k).to_owned(), v.clone());
        }
        Self(m)
    }

    /// Field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.0.get(key)
    }

    /// Numeric field lookup (accepts integers and floats).
    #[must_use]
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.0.get(key).and_then(Value::as_f64)
    }

    /// Sets a field.
    pub fn set(&mut self, key: impl Into<String>, value: Value) {
        self.0.insert(key.into(), value);
    }
}

/// A filter over payloads. All coordinates are in the payload's `lat` /
/// `lon` fields unless field names are overridden.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Filter {
    /// Point's (`lat_key`, `lon_key`) numeric fields must fall inside the
    /// box (edges inclusive). Qdrant's `geo_bounding_box` condition.
    GeoBoundingBox {
        /// Payload field holding latitude.
        lat_key: String,
        /// Payload field holding longitude.
        lon_key: String,
        /// Southern edge.
        min_lat: f64,
        /// Western edge.
        min_lon: f64,
        /// Northern edge.
        max_lat: f64,
        /// Eastern edge.
        max_lon: f64,
    },
    /// A string field must equal the given value exactly.
    MatchKeyword {
        /// Payload field.
        key: String,
        /// Required value.
        value: String,
    },
    /// A numeric field must lie in `[gte, lte]` (either bound optional).
    Range {
        /// Payload field.
        key: String,
        /// Lower bound, inclusive.
        gte: Option<f64>,
        /// Upper bound, inclusive.
        lte: Option<f64>,
    },
    /// All sub-filters must hold.
    And(Vec<Filter>),
    /// At least one sub-filter must hold.
    Or(Vec<Filter>),
    /// The sub-filter must not hold.
    Not(Box<Filter>),
}

impl Filter {
    /// Convenience constructor for the common geo filter on `lat`/`lon`.
    #[must_use]
    pub fn geo_box(min_lat: f64, min_lon: f64, max_lat: f64, max_lon: f64) -> Self {
        Filter::GeoBoundingBox {
            lat_key: "lat".to_owned(),
            lon_key: "lon".to_owned(),
            min_lat,
            min_lon,
            max_lat,
            max_lon,
        }
    }

    /// Evaluates the filter against a payload.
    #[must_use]
    pub fn matches(&self, payload: &Payload) -> bool {
        match self {
            Filter::GeoBoundingBox {
                lat_key,
                lon_key,
                min_lat,
                min_lon,
                max_lat,
                max_lon,
            } => {
                let (Some(lat), Some(lon)) = (payload.get_f64(lat_key), payload.get_f64(lon_key))
                else {
                    return false;
                };
                lat >= *min_lat && lat <= *max_lat && lon >= *min_lon && lon <= *max_lon
            }
            Filter::MatchKeyword { key, value } => payload
                .get(key)
                .and_then(Value::as_str)
                .is_some_and(|s| s == value),
            Filter::Range { key, gte, lte } => {
                let Some(x) = payload.get_f64(key) else {
                    return false;
                };
                gte.is_none_or(|lo| x >= lo) && lte.is_none_or(|hi| x <= hi)
            }
            Filter::And(fs) => fs.iter().all(|f| f.matches(payload)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(payload)),
            Filter::Not(f) => !f.matches(payload),
        }
    }
}

/// Text fields at least this long are eligible for compression;
/// shorter values stay in the skeleton (compressing a city name saves
/// nothing and would force decompression on keyword filters).
const COMPRESS_MIN_LEN: usize = 64;

/// Number of buffered long strings that triggers symbol-table training.
/// Until then strings are held raw; at the trigger the table trains on
/// them and every buffered string is compressed retroactively.
const TRAIN_AT: usize = 1024;

/// Cap on training-sample strings (training is quadratic-ish in sample
/// bytes; a thousand tips pin the symbol distribution well enough).
const TRAIN_SAMPLE: usize = 1024;

/// A long text field split out of a payload: either still raw (table
/// not yet trained) or an index into the FSST arena.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum TextRef {
    /// Uncompressed, awaiting table training.
    Raw(String),
    /// Index into the [`CompressedStrings`] arena.
    Packed(u32),
}

/// One extracted text field of one payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TextSlot {
    key: String,
    text: TextRef,
}

/// The compressed-text side table of a [`PayloadStore`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TextTier {
    /// Extracted fields per payload offset (parallel to the skeletons).
    slots: Vec<Vec<TextSlot>>,
    /// Raw strings currently buffered awaiting training.
    pending: usize,
    /// The arena, present once the table has been trained.
    packed: Option<CompressedStrings>,
}

/// Payload storage with an optional compressed-text tier.
///
/// Plain mode stores payloads verbatim. Compressed mode keeps a
/// *skeleton* (every field except long text) inline and moves long
/// text into a shared FSST arena with per-string random access; a
/// payload is only reassembled — and its text only decompressed — when
/// a caller asks for the full payload (refinement) or a filter
/// explicitly references a compressed field (none of the hot geo /
/// range / keyword filters do).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PayloadStore {
    skeletons: Vec<Payload>,
    text: Option<TextTier>,
}

impl PayloadStore {
    /// A store that keeps payloads verbatim.
    #[must_use]
    pub fn plain() -> Self {
        Self {
            skeletons: Vec::new(),
            text: None,
        }
    }

    /// A store that compresses long text fields.
    #[must_use]
    pub fn compressed() -> Self {
        Self {
            skeletons: Vec::new(),
            text: Some(TextTier {
                slots: Vec::new(),
                pending: 0,
                packed: None,
            }),
        }
    }

    /// Whether the compressed-text tier is active.
    #[must_use]
    pub fn is_compressed(&self) -> bool {
        self.text.is_some()
    }

    /// Number of stored payloads.
    #[must_use]
    pub fn len(&self) -> usize {
        self.skeletons.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.skeletons.is_empty()
    }

    /// Appends a payload.
    pub fn push(&mut self, payload: Payload) {
        if self.text.is_some() {
            let (skeleton, slots) = Self::split(payload);
            self.skeletons.push(skeleton);
            let tier = self.text.as_mut().expect("checked above");
            tier.pending += slots
                .iter()
                .filter(|s| matches!(s.text, TextRef::Raw(_)))
                .count();
            tier.slots.push(slots);
            self.absorb_pending();
        } else {
            self.skeletons.push(payload);
        }
    }

    /// Replaces the payload at `offset`. Packed strings the old payload
    /// referenced stay in the arena as garbage until a rebuild; the
    /// arena is append-only by design.
    pub fn set(&mut self, offset: usize, payload: Payload) {
        if self.text.is_some() {
            let (skeleton, slots) = Self::split(payload);
            self.skeletons[offset] = skeleton;
            let tier = self.text.as_mut().expect("checked above");
            tier.pending += slots
                .iter()
                .filter(|s| matches!(s.text, TextRef::Raw(_)))
                .count();
            tier.slots[offset] = slots;
            self.absorb_pending();
        } else {
            self.skeletons[offset] = payload;
        }
    }

    /// The skeleton at `offset`: the full payload in plain mode, the
    /// payload minus compressed text fields in compressed mode. This is
    /// the filter path's view — no decompression, ever.
    #[must_use]
    pub fn skeleton(&self, offset: usize) -> &Payload {
        &self.skeletons[offset]
    }

    /// The full payload at `offset`, reassembling compressed text.
    #[must_use]
    pub fn get(&self, offset: usize) -> Payload {
        let mut p = self.skeletons[offset].clone();
        if let Some(tier) = &self.text {
            for slot in &tier.slots[offset] {
                let v = match &slot.text {
                    TextRef::Raw(s) => s.clone(),
                    TextRef::Packed(i) => tier
                        .packed
                        .as_ref()
                        .expect("packed ref implies trained arena")
                        .get(*i),
                };
                p.set(slot.key.clone(), Value::String(v));
            }
        }
        p
    }

    /// Evaluates `filter` at `offset` against the skeleton, falling
    /// back to the reassembled payload only when the filter references
    /// a field that was split into the text tier — so the hot filter
    /// path (geo boxes, numeric ranges, short keywords) never touches
    /// compressed bytes.
    #[must_use]
    pub fn matches(&self, offset: usize, filter: &Filter) -> bool {
        if let Some(tier) = &self.text {
            let slots = &tier.slots[offset];
            if !slots.is_empty() && slots.iter().any(|s| filter_references(filter, &s.key)) {
                return filter.matches(&self.get(offset));
            }
        }
        filter.matches(&self.skeletons[offset])
    }

    /// Estimated heap bytes: JSON size of the skeletons plus the text
    /// tier (raw buffered strings at full size, packed strings at
    /// arena size). An accounting estimate, not an allocator census.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let skeleton_bytes: usize = self
            .skeletons
            .iter()
            .map(|p| serde_json::to_string(p).map_or(0, |s| s.len()) + 24)
            .sum();
        let text_bytes = self.text.as_ref().map_or(0, |tier| {
            let raw: usize = tier
                .slots
                .iter()
                .flatten()
                .map(|s| match &s.text {
                    TextRef::Raw(t) => t.len() + s.key.len() + 16,
                    TextRef::Packed(_) => s.key.len() + 16,
                })
                .sum();
            raw + tier
                .packed
                .as_ref()
                .map_or(0, CompressedStrings::memory_bytes)
        });
        skeleton_bytes + text_bytes
    }

    /// Splits a payload into its skeleton and extracted text slots.
    fn split(payload: Payload) -> (Payload, Vec<TextSlot>) {
        let mut skeleton = serde_json::Map::new();
        let mut slots = Vec::new();
        for (k, v) in payload.0 {
            match v {
                Value::String(s) if s.len() >= COMPRESS_MIN_LEN => {
                    slots.push(TextSlot {
                        key: k,
                        text: TextRef::Raw(s),
                    });
                }
                other => {
                    skeleton.insert(k, other);
                }
            }
        }
        (Payload(skeleton), slots)
    }

    /// Trains the symbol table once enough raw text has accumulated,
    /// then drains every raw slot into the arena. Also compresses
    /// stragglers that arrive after training.
    fn absorb_pending(&mut self) {
        let Some(tier) = self.text.as_mut() else {
            return;
        };
        if tier.pending == 0 {
            return;
        }
        if tier.packed.is_none() {
            if tier.pending < TRAIN_AT {
                return;
            }
            let sample: Vec<&[u8]> = tier
                .slots
                .iter()
                .flatten()
                .filter_map(|s| match &s.text {
                    TextRef::Raw(t) => Some(t.as_bytes()),
                    TextRef::Packed(_) => None,
                })
                .take(TRAIN_SAMPLE)
                .collect();
            tier.packed = Some(CompressedStrings::new(SymbolTable::train(&sample)));
        }
        let arena = tier.packed.as_mut().expect("trained above");
        for slot in tier.slots.iter_mut().flatten() {
            if let TextRef::Raw(t) = &slot.text {
                slot.text = TextRef::Packed(arena.push(t));
            }
        }
        tier.pending = 0;
    }
}

/// Whether `filter` mentions payload field `key` anywhere.
fn filter_references(filter: &Filter, key: &str) -> bool {
    match filter {
        Filter::GeoBoundingBox {
            lat_key, lon_key, ..
        } => lat_key == key || lon_key == key,
        Filter::MatchKeyword { key: k, .. } | Filter::Range { key: k, .. } => k == key,
        Filter::And(fs) | Filter::Or(fs) => fs.iter().any(|f| filter_references(f, key)),
        Filter::Not(f) => filter_references(f, key),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn poi(lat: f64, lon: f64, city: &str, stars: f64) -> Payload {
        Payload::from_pairs(&[
            ("lat", json!(lat)),
            ("lon", json!(lon)),
            ("city", json!(city)),
            ("stars", json!(stars)),
        ])
    }

    #[test]
    fn geo_box_inclusive_edges() {
        let f = Filter::geo_box(0.0, 0.0, 1.0, 1.0);
        assert!(f.matches(&poi(0.0, 0.0, "x", 3.0)));
        assert!(f.matches(&poi(1.0, 1.0, "x", 3.0)));
        assert!(!f.matches(&poi(1.00001, 0.5, "x", 3.0)));
    }

    #[test]
    fn geo_box_missing_fields_fails() {
        let f = Filter::geo_box(0.0, 0.0, 1.0, 1.0);
        assert!(!f.matches(&Payload::new()));
    }

    #[test]
    fn match_keyword() {
        let f = Filter::MatchKeyword {
            key: "city".to_owned(),
            value: "Nashville".to_owned(),
        };
        assert!(f.matches(&poi(0.5, 0.5, "Nashville", 4.0)));
        assert!(!f.matches(&poi(0.5, 0.5, "Philadelphia", 4.0)));
    }

    #[test]
    fn range_bounds() {
        let f = Filter::Range {
            key: "stars".to_owned(),
            gte: Some(3.0),
            lte: Some(4.5),
        };
        assert!(f.matches(&poi(0.0, 0.0, "x", 3.0)));
        assert!(f.matches(&poi(0.0, 0.0, "x", 4.5)));
        assert!(!f.matches(&poi(0.0, 0.0, "x", 5.0)));
        let open = Filter::Range {
            key: "stars".to_owned(),
            gte: Some(3.0),
            lte: None,
        };
        assert!(open.matches(&poi(0.0, 0.0, "x", 5.0)));
    }

    #[test]
    fn boolean_combinators() {
        let f = Filter::And(vec![
            Filter::geo_box(0.0, 0.0, 1.0, 1.0),
            Filter::Not(Box::new(Filter::MatchKeyword {
                key: "city".to_owned(),
                value: "Springfield".to_owned(),
            })),
        ]);
        assert!(f.matches(&poi(0.5, 0.5, "Nashville", 3.0)));
        assert!(!f.matches(&poi(0.5, 0.5, "Springfield", 3.0)));
        let g = Filter::Or(vec![
            Filter::MatchKeyword {
                key: "city".to_owned(),
                value: "A".to_owned(),
            },
            Filter::MatchKeyword {
                key: "city".to_owned(),
                value: "B".to_owned(),
            },
        ]);
        assert!(g.matches(&poi(0.0, 0.0, "B", 1.0)));
        assert!(!g.matches(&poi(0.0, 0.0, "C", 1.0)));
    }

    fn tip_payload(i: usize) -> Payload {
        Payload::from_pairs(&[
            ("lat", json!(i as f64 * 0.01)),
            ("lon", json!(-(i as f64) * 0.01)),
            ("name", json!(format!("poi-{i}"))),
            (
                "tips",
                json!(format!(
                    "visitor {i} says the coffee here is excellent and the \
                     staff were friendly; the pastries remain outstanding"
                )),
            ),
        ])
    }

    #[test]
    fn plain_store_round_trips() {
        let mut s = PayloadStore::plain();
        for i in 0..10 {
            s.push(tip_payload(i));
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.get(3), tip_payload(3));
        assert_eq!(s.skeleton(3), &tip_payload(3));
    }

    #[test]
    fn compressed_store_round_trips_before_and_after_training() {
        let mut s = PayloadStore::compressed();
        let n = super::TRAIN_AT + 50; // crosses the training trigger
        for i in 0..n {
            s.push(tip_payload(i));
        }
        for i in [0, 1, super::TRAIN_AT - 1, super::TRAIN_AT, n - 1] {
            assert_eq!(s.get(i), tip_payload(i), "payload {i}");
        }
        // Stragglers after training compress on arrival.
        s.push(tip_payload(n));
        assert_eq!(s.get(n), tip_payload(n));
    }

    #[test]
    fn compressed_store_saves_memory() {
        let mut plain = PayloadStore::plain();
        let mut packed = PayloadStore::compressed();
        for i in 0..(super::TRAIN_AT + 200) {
            plain.push(tip_payload(i));
            packed.push(tip_payload(i));
        }
        assert!(
            (packed.memory_bytes() as f64) < plain.memory_bytes() as f64 * 0.8,
            "compressed {} vs plain {}",
            packed.memory_bytes(),
            plain.memory_bytes()
        );
    }

    #[test]
    fn skeleton_filters_never_need_text() {
        let mut s = PayloadStore::compressed();
        for i in 0..20 {
            s.push(tip_payload(i));
        }
        let geo = Filter::geo_box(0.0, -1.0, 0.05, 0.0);
        assert!(s.matches(3, &geo));
        assert!(!s.matches(10, &geo));
        // The skeleton genuinely lacks the long text field.
        assert!(s.skeleton(3).get("tips").is_none());
        assert!(s.skeleton(3).get("name").is_some());
    }

    #[test]
    fn filters_on_compressed_fields_still_answer_correctly() {
        let mut s = PayloadStore::compressed();
        for i in 0..5 {
            s.push(tip_payload(i));
        }
        let text = tip_payload(2)
            .get("tips")
            .and_then(Value::as_str)
            .unwrap()
            .to_owned();
        let f = Filter::MatchKeyword {
            key: "tips".to_owned(),
            value: text,
        };
        assert!(s.matches(2, &f));
        assert!(!s.matches(3, &f));
    }

    #[test]
    fn set_replaces_and_reassembles() {
        let mut s = PayloadStore::compressed();
        for i in 0..10 {
            s.push(tip_payload(i));
        }
        s.set(4, tip_payload(1000));
        assert_eq!(s.get(4), tip_payload(1000));
    }

    #[test]
    fn store_serde_round_trip() {
        let mut s = PayloadStore::compressed();
        for i in 0..(super::TRAIN_AT + 10) {
            s.push(tip_payload(i));
        }
        let json = serde_json::to_string(&s).unwrap();
        let back: PayloadStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), s.len());
        for i in [0, super::TRAIN_AT + 5] {
            assert_eq!(back.get(i), s.get(i));
        }
    }

    #[test]
    fn payload_accessors() {
        let mut p = poi(1.0, 2.0, "x", 3.5);
        assert_eq!(p.get_f64("lat"), Some(1.0));
        assert_eq!(p.get("city").and_then(Value::as_str), Some("x"));
        p.set("is_open", json!(true));
        assert_eq!(p.get("is_open"), Some(&json!(true)));
    }
}

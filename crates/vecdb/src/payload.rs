//! Point payloads and payload filters.
//!
//! Payloads are JSON objects attached to points, as in Qdrant. Filters
//! are a small condition language evaluated against payloads; SemaSK uses
//! [`Filter::GeoBoundingBox`] to implement the query range.

use serde::{Deserialize, Serialize};
use serde_json::Value;

/// A JSON-object payload attached to a point.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Payload(pub serde_json::Map<String, Value>);

impl Payload {
    /// An empty payload.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a payload from key/value pairs.
    #[must_use]
    pub fn from_pairs(pairs: &[(&str, Value)]) -> Self {
        let mut m = serde_json::Map::new();
        for (k, v) in pairs {
            m.insert((*k).to_owned(), v.clone());
        }
        Self(m)
    }

    /// Field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.0.get(key)
    }

    /// Numeric field lookup (accepts integers and floats).
    #[must_use]
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.0.get(key).and_then(Value::as_f64)
    }

    /// Sets a field.
    pub fn set(&mut self, key: impl Into<String>, value: Value) {
        self.0.insert(key.into(), value);
    }
}

/// A filter over payloads. All coordinates are in the payload's `lat` /
/// `lon` fields unless field names are overridden.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Filter {
    /// Point's (`lat_key`, `lon_key`) numeric fields must fall inside the
    /// box (edges inclusive). Qdrant's `geo_bounding_box` condition.
    GeoBoundingBox {
        /// Payload field holding latitude.
        lat_key: String,
        /// Payload field holding longitude.
        lon_key: String,
        /// Southern edge.
        min_lat: f64,
        /// Western edge.
        min_lon: f64,
        /// Northern edge.
        max_lat: f64,
        /// Eastern edge.
        max_lon: f64,
    },
    /// A string field must equal the given value exactly.
    MatchKeyword {
        /// Payload field.
        key: String,
        /// Required value.
        value: String,
    },
    /// A numeric field must lie in `[gte, lte]` (either bound optional).
    Range {
        /// Payload field.
        key: String,
        /// Lower bound, inclusive.
        gte: Option<f64>,
        /// Upper bound, inclusive.
        lte: Option<f64>,
    },
    /// All sub-filters must hold.
    And(Vec<Filter>),
    /// At least one sub-filter must hold.
    Or(Vec<Filter>),
    /// The sub-filter must not hold.
    Not(Box<Filter>),
}

impl Filter {
    /// Convenience constructor for the common geo filter on `lat`/`lon`.
    #[must_use]
    pub fn geo_box(min_lat: f64, min_lon: f64, max_lat: f64, max_lon: f64) -> Self {
        Filter::GeoBoundingBox {
            lat_key: "lat".to_owned(),
            lon_key: "lon".to_owned(),
            min_lat,
            min_lon,
            max_lat,
            max_lon,
        }
    }

    /// Evaluates the filter against a payload.
    #[must_use]
    pub fn matches(&self, payload: &Payload) -> bool {
        match self {
            Filter::GeoBoundingBox {
                lat_key,
                lon_key,
                min_lat,
                min_lon,
                max_lat,
                max_lon,
            } => {
                let (Some(lat), Some(lon)) = (payload.get_f64(lat_key), payload.get_f64(lon_key))
                else {
                    return false;
                };
                lat >= *min_lat && lat <= *max_lat && lon >= *min_lon && lon <= *max_lon
            }
            Filter::MatchKeyword { key, value } => payload
                .get(key)
                .and_then(Value::as_str)
                .is_some_and(|s| s == value),
            Filter::Range { key, gte, lte } => {
                let Some(x) = payload.get_f64(key) else {
                    return false;
                };
                gte.is_none_or(|lo| x >= lo) && lte.is_none_or(|hi| x <= hi)
            }
            Filter::And(fs) => fs.iter().all(|f| f.matches(payload)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(payload)),
            Filter::Not(f) => !f.matches(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn poi(lat: f64, lon: f64, city: &str, stars: f64) -> Payload {
        Payload::from_pairs(&[
            ("lat", json!(lat)),
            ("lon", json!(lon)),
            ("city", json!(city)),
            ("stars", json!(stars)),
        ])
    }

    #[test]
    fn geo_box_inclusive_edges() {
        let f = Filter::geo_box(0.0, 0.0, 1.0, 1.0);
        assert!(f.matches(&poi(0.0, 0.0, "x", 3.0)));
        assert!(f.matches(&poi(1.0, 1.0, "x", 3.0)));
        assert!(!f.matches(&poi(1.00001, 0.5, "x", 3.0)));
    }

    #[test]
    fn geo_box_missing_fields_fails() {
        let f = Filter::geo_box(0.0, 0.0, 1.0, 1.0);
        assert!(!f.matches(&Payload::new()));
    }

    #[test]
    fn match_keyword() {
        let f = Filter::MatchKeyword {
            key: "city".to_owned(),
            value: "Nashville".to_owned(),
        };
        assert!(f.matches(&poi(0.5, 0.5, "Nashville", 4.0)));
        assert!(!f.matches(&poi(0.5, 0.5, "Philadelphia", 4.0)));
    }

    #[test]
    fn range_bounds() {
        let f = Filter::Range {
            key: "stars".to_owned(),
            gte: Some(3.0),
            lte: Some(4.5),
        };
        assert!(f.matches(&poi(0.0, 0.0, "x", 3.0)));
        assert!(f.matches(&poi(0.0, 0.0, "x", 4.5)));
        assert!(!f.matches(&poi(0.0, 0.0, "x", 5.0)));
        let open = Filter::Range {
            key: "stars".to_owned(),
            gte: Some(3.0),
            lte: None,
        };
        assert!(open.matches(&poi(0.0, 0.0, "x", 5.0)));
    }

    #[test]
    fn boolean_combinators() {
        let f = Filter::And(vec![
            Filter::geo_box(0.0, 0.0, 1.0, 1.0),
            Filter::Not(Box::new(Filter::MatchKeyword {
                key: "city".to_owned(),
                value: "Springfield".to_owned(),
            })),
        ]);
        assert!(f.matches(&poi(0.5, 0.5, "Nashville", 3.0)));
        assert!(!f.matches(&poi(0.5, 0.5, "Springfield", 3.0)));
        let g = Filter::Or(vec![
            Filter::MatchKeyword {
                key: "city".to_owned(),
                value: "A".to_owned(),
            },
            Filter::MatchKeyword {
                key: "city".to_owned(),
                value: "B".to_owned(),
            },
        ]);
        assert!(g.matches(&poi(0.0, 0.0, "B", 1.0)));
        assert!(!g.matches(&poi(0.0, 0.0, "C", 1.0)));
    }

    #[test]
    fn payload_accessors() {
        let mut p = poi(1.0, 2.0, "x", 3.5);
        assert_eq!(p.get_f64("lat"), Some(1.0));
        assert_eq!(p.get("city").and_then(Value::as_str), Some("x"));
        p.set("is_open", json!(true));
        assert_eq!(p.get("is_open"), Some(&json!(true)));
    }
}

//! Scalar quantization (f32 → u8) with rescoring.
//!
//! Qdrant's memory-saving technique: store 8-bit codes (4× smaller than
//! f32), search over the codes, then *rescore* a small oversampled
//! candidate set with the original vectors to recover accuracy. Provided
//! here as an optional storage layer; the `hnsw_recall` harness and the
//! tests quantify the recall cost.

use serde::{Deserialize, Serialize};

use crate::distance::Distance;

/// Which representation the exact-scan scoring paths read.
///
/// `Auto` (the default) turns quantized-first scoring on once a
/// collection is large enough for memory traffic to dominate scan cost;
/// small collections keep full-precision scoring, so modest workloads —
/// and the existing parity suites — see bit-identical results without
/// opting out. `Full` is the explicit escape hatch; `Quantized` forces
/// the tier on at any size with a chosen rerank budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ScoringTier {
    /// Quantized-first above [`crate::collection::AUTO_QUANT_THRESHOLD`]
    /// points, full precision below.
    #[default]
    Auto,
    /// Always score at full precision (bit-identical to the
    /// pre-quantization engine).
    Full,
    /// Always score over u8 codes, then rescore the best
    /// `rerank_factor × k` survivors at full precision.
    Quantized {
        /// Oversampling multiple for the full-precision rescoring pass.
        rerank_factor: usize,
    },
}

impl ScoringTier {
    /// The rerank oversampling factor used when the tier is active
    /// without an explicit choice.
    pub const DEFAULT_RERANK_FACTOR: usize = 4;
}

/// A set of scalar-quantized vectors (one global affine codebook).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedVectors {
    codes: Vec<u8>,
    dim: usize,
    len: usize,
    /// Dequantized value = `min + scale * code`.
    min: f32,
    scale: f32,
    /// Cached inverse L2 norm of each *dequantized* vector, computed at
    /// encode time — the same norm-caching strategy as the
    /// full-precision [`crate::Collection`], so the quantized cosine
    /// path never re-sums a stored vector's squares per comparison.
    inv_norms: Vec<f32>,
}

impl QuantizedVectors {
    /// Quantizes `vectors` (all of equal dimension) into u8 codes.
    ///
    /// Returns an empty store for empty input.
    #[must_use]
    pub fn encode(vectors: &[Vec<f32>]) -> Self {
        let len = vectors.len();
        let dim = vectors.first().map_or(0, Vec::len);
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for v in vectors {
            for &x in v {
                min = min.min(x);
                max = max.max(x);
            }
        }
        if !min.is_finite() || !max.is_finite() || min >= max {
            min = 0.0;
            max = 1.0;
        }
        let scale = (max - min) / 255.0;
        let mut codes = Vec::with_capacity(len * dim);
        let mut inv_norms = Vec::with_capacity(len);
        for v in vectors {
            let mut n = 0.0f32;
            for &x in v {
                let c = ((x - min) / scale).round().clamp(0.0, 255.0) as u8;
                codes.push(c);
                let y = min + scale * f32::from(c);
                n += y * y;
            }
            inv_norms.push(if n == 0.0 { 0.0 } else { 1.0 / n.sqrt() });
        }
        Self {
            codes,
            dim,
            len,
            min,
            scale,
            inv_norms,
        }
    }

    /// Appends one vector using the **frozen** codebook (the global
    /// `min`/`scale` chosen at encode time). Values outside the trained
    /// range clamp to the nearest code — callers that grow a store
    /// substantially should re-[`QuantizedVectors::encode`] so the
    /// codebook tracks the data (the collection does this when its
    /// point count doubles).
    pub fn push(&mut self, v: &[f32]) {
        debug_assert_eq!(v.len(), self.dim);
        let mut n = 0.0f32;
        for &x in v {
            let c = ((x - self.min) / self.scale).round().clamp(0.0, 255.0) as u8;
            self.codes.push(c);
            let y = self.min + self.scale * f32::from(c);
            n += y * y;
        }
        self.inv_norms
            .push(if n == 0.0 { 0.0 } else { 1.0 / n.sqrt() });
        self.len += 1;
    }

    /// Number of stored vectors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Vector dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Bytes used by the codes (≈ 1/4 of the f32 original).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.codes.len()
    }

    /// Reconstructs (dequantizes) vector `i`.
    #[must_use]
    pub fn decode(&self, i: usize) -> Vec<f32> {
        let start = i * self.dim;
        self.codes[start..start + self.dim]
            .iter()
            .map(|&c| self.min + self.scale * f32::from(c))
            .collect()
    }

    /// Asymmetric distance between a full-precision query and the
    /// quantized vector `i`. Derives the query's inverse norm on every
    /// call; scans should precompute it once via
    /// [`crate::distance::inv_norm`] and use
    /// [`QuantizedVectors::distance_with_query_inv`].
    #[must_use]
    pub fn distance(&self, metric: Distance, q: &[f32], i: usize) -> f32 {
        self.distance_with_query_inv(metric, q, crate::distance::inv_norm(q), i)
    }

    /// Asymmetric distance with the query's inverse norm already known.
    /// The stored side uses the inverse norm cached at encode time, so
    /// the cosine path is one fused dot product over the dequantized
    /// codes — consistent with the full-precision
    /// [`Distance::distance_normed`] fast path.
    #[must_use]
    pub fn distance_with_query_inv(
        &self,
        metric: Distance,
        q: &[f32],
        q_inv: f32,
        i: usize,
    ) -> f32 {
        debug_assert_eq!(q.len(), self.dim);
        let start = i * self.dim;
        let codes = &self.codes[start..start + self.dim];
        match metric {
            Distance::Cosine => {
                if q_inv == 0.0 || self.inv_norms[i] == 0.0 {
                    return 1.0;
                }
                let mut dot = 0.0f32;
                for (x, &c) in q.iter().zip(codes) {
                    let y = self.min + self.scale * f32::from(c);
                    dot += x * y;
                }
                1.0 - dot * q_inv * self.inv_norms[i]
            }
            Distance::Dot => {
                let mut dot = 0.0f32;
                for (x, &c) in q.iter().zip(codes) {
                    dot += x * (self.min + self.scale * f32::from(c));
                }
                -dot
            }
            Distance::Euclid => {
                let mut s = 0.0f32;
                for (x, &c) in q.iter().zip(codes) {
                    let d = x - (self.min + self.scale * f32::from(c));
                    s += d * d;
                }
                s
            }
        }
    }

    /// Top-k search over the quantized codes, optionally rescoring an
    /// `oversample`-times larger candidate set against the original
    /// vectors (pass them via `full`). Returns `(offset, distance)`
    /// sorted ascending (distances are full-precision when rescored).
    #[must_use]
    pub fn search(
        &self,
        metric: Distance,
        q: &[f32],
        k: usize,
        oversample: usize,
        full: Option<&[Vec<f32>]>,
    ) -> Vec<(usize, f32)> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let fetch = (k * oversample.max(1)).min(self.len);
        let q_inv = crate::distance::inv_norm(q);
        let mut scored: Vec<(usize, f32)> = (0..self.len)
            .map(|i| (i, self.distance_with_query_inv(metric, q, q_inv, i)))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(fetch);
        if let Some(full) = full {
            for (i, d) in &mut scored {
                *d = metric.distance(q, &full[*i]);
            }
            scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        }
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(seed: u64, dim: usize) -> Vec<f32> {
        (0..dim)
            .map(|i| {
                let h = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(i as u64)
                    .wrapping_mul(0xff51_afd7_ed55_8ccd);
                ((h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
            })
            .collect()
    }

    fn vectors(n: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..n).map(|i| pseudo(i as u64 + 1, dim)).collect()
    }

    #[test]
    fn decode_is_close_to_original() {
        let vs = vectors(50, 16);
        let q = QuantizedVectors::encode(&vs);
        for (i, v) in vs.iter().enumerate() {
            let d = q.decode(i);
            for (a, b) in v.iter().zip(&d) {
                assert!(
                    (a - b).abs() < 0.01,
                    "quantization error too large: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn memory_is_quarter_of_f32() {
        let vs = vectors(100, 64);
        let q = QuantizedVectors::encode(&vs);
        assert_eq!(q.memory_bytes(), 100 * 64);
        assert_eq!(q.memory_bytes() * 4, 100 * 64 * 4); // vs f32 bytes
    }

    #[test]
    fn quantized_search_recall_high_with_rescore() {
        let vs = vectors(500, 32);
        let q = QuantizedVectors::encode(&vs);
        let query = pseudo(9999, 32);
        // Exact truth.
        let mut truth: Vec<(usize, f32)> = vs
            .iter()
            .enumerate()
            .map(|(i, v)| (i, Distance::Euclid.distance(&query, v)))
            .collect();
        truth.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let truth_ids: Vec<usize> = truth[..10].iter().map(|x| x.0).collect();

        let rescored = q.search(Distance::Euclid, &query, 10, 3, Some(&vs));
        let hits = rescored
            .iter()
            .filter(|(i, _)| truth_ids.contains(i))
            .count();
        assert!(hits >= 9, "rescored recall {hits}/10");
        // Rescored distances are the exact full-precision ones.
        for (i, d) in &rescored {
            assert!((d - Distance::Euclid.distance(&query, &vs[*i])).abs() < 1e-6);
        }
    }

    #[test]
    fn quantized_only_search_is_decent() {
        let vs = vectors(300, 32);
        let q = QuantizedVectors::encode(&vs);
        let query = pseudo(777, 32);
        let raw = q.search(Distance::Cosine, &query, 10, 1, None);
        let mut truth: Vec<(usize, f32)> = vs
            .iter()
            .enumerate()
            .map(|(i, v)| (i, Distance::Cosine.distance(&query, v)))
            .collect();
        truth.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let truth_ids: Vec<usize> = truth[..10].iter().map(|x| x.0).collect();
        let hits = raw.iter().filter(|(i, _)| truth_ids.contains(i)).count();
        assert!(hits >= 7, "unrescored recall {hits}/10");
    }

    #[test]
    fn quantized_cosine_agrees_with_full_precision_within_tolerance() {
        // The quantized path (cached dequantized-code norms) and the
        // full-precision path (cached vector norms) must agree to within
        // the quantization error at 8 bits — pins the two scoring paths
        // to the same norm-caching semantics.
        let vs = vectors(200, 32);
        let q = QuantizedVectors::encode(&vs);
        let query = pseudo(4242, 32);
        let q_inv = crate::distance::inv_norm(&query);
        for (i, v) in vs.iter().enumerate() {
            let quantized = q.distance(Distance::Cosine, &query, i);
            let full =
                Distance::Cosine.distance_normed(&query, q_inv, v, crate::distance::inv_norm(v));
            assert!(
                (quantized - full).abs() < 0.02,
                "vector {i}: quantized {quantized} vs full {full}"
            );
            // And the query-inv variant is exactly the public entry point.
            assert_eq!(
                quantized,
                q.distance_with_query_inv(Distance::Cosine, &query, q_inv, i)
            );
        }
    }

    #[test]
    fn push_matches_bulk_encode() {
        let vs = vectors(120, 16);
        let bulk = QuantizedVectors::encode(&vs);
        // Re-encode the first 100, then push the remaining 20 with the
        // frozen codebook: identical codes because bulk encoding uses
        // one global codebook anyway.
        let mut grown = QuantizedVectors::encode(&vs);
        let mut grown_from_prefix = {
            let mut q = QuantizedVectors::encode(&vs[..100]);
            for v in &vs[100..] {
                q.push(v);
            }
            q
        };
        // Codebooks may differ (prefix min/max vs full min/max), but the
        // decoded vectors must stay within quantization error.
        for i in 0..120 {
            let a = grown.decode(i);
            let b = grown_from_prefix.decode(i);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 0.05, "vector {i}: {x} vs {y}");
            }
        }
        assert_eq!(grown_from_prefix.len(), bulk.len());
        // Keep `grown` used (parity of lengths with the bulk store).
        grown.push(&vs[0]);
        assert_eq!(grown.len(), 121);
        grown_from_prefix.push(&vs[0]);
        assert_eq!(grown_from_prefix.decode(120).len(), grown.decode(120).len());
    }

    #[test]
    fn degenerate_inputs() {
        let empty = QuantizedVectors::encode(&[]);
        assert!(empty.is_empty());
        assert!(empty.search(Distance::Cosine, &[], 5, 2, None).is_empty());
        // Constant vectors (min == max) still encode without NaNs.
        let constant = vec![vec![0.5f32; 8]; 3];
        let q = QuantizedVectors::encode(&constant);
        let d = q.decode(0);
        assert!(d.iter().all(|x| x.is_finite()));
    }
}

//! Error types for the vector database.

use std::fmt;

/// Errors produced by the `vecdb` crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VecDbError {
    /// A vector's length did not match the collection dimension.
    DimensionMismatch {
        /// Collection dimension.
        expected: usize,
        /// Supplied vector length.
        found: usize,
    },
    /// Named collection does not exist.
    CollectionNotFound {
        /// The missing collection's name.
        name: String,
    },
    /// A collection with this name already exists.
    CollectionExists {
        /// The duplicate name.
        name: String,
    },
    /// A point id was not found in the collection.
    PointNotFound {
        /// The missing point id.
        id: u64,
    },
    /// A live point with this id already exists.
    PointExists {
        /// The duplicate point id.
        id: u64,
    },
    /// A vector contained NaN or infinity.
    NonFiniteVector,
    /// Snapshot (de)serialization failed.
    Snapshot {
        /// Human-readable cause.
        cause: String,
    },
}

impl fmt::Display for VecDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VecDbError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, got {found}")
            }
            VecDbError::CollectionNotFound { name } => {
                write!(f, "collection `{name}` not found")
            }
            VecDbError::CollectionExists { name } => {
                write!(f, "collection `{name}` already exists")
            }
            VecDbError::PointNotFound { id } => write!(f, "point {id} not found"),
            VecDbError::PointExists { id } => write!(f, "point {id} already exists"),
            VecDbError::NonFiniteVector => write!(f, "vector contains NaN or infinity"),
            VecDbError::Snapshot { cause } => write!(f, "snapshot error: {cause}"),
        }
    }
}

impl std::error::Error for VecDbError {}

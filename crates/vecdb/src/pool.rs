//! A persistent shared worker pool for query fan-out.
//!
//! The sharded search layers used to spawn one scoped OS thread per
//! shard per query; at microsecond-scale per-shard work the
//! ~20–50 µs spawn/join cost dominated end-to-end latency
//! (`BENCH_sharding.json` records the curve). This pool replaces that
//! with **long-lived worker threads and a channel work queue**: threads
//! are created once per process, jobs are plain boxed closures, and a
//! fan-out costs a channel send plus a condvar wake instead of a thread
//! spawn. One global pool ([`global`]) is shared across shards, across
//! queries, and across batches, so concurrent callers interleave on the
//! same fixed set of threads instead of oversubscribing the machine.
//!
//! [`WorkerPool::run`] provides the scoped fan-out every sharded backend
//! uses: it blocks until all submitted jobs finish, which is what makes
//! lending the caller's stack borrows to the workers sound. Nested
//! fan-outs (a pooled job that itself calls [`WorkerPool::run`]) execute
//! inline on the current worker rather than re-queueing — queue-and-wait
//! from inside a worker could deadlock once every worker blocks on jobs
//! stuck behind it in the queue.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, OnceLock};

/// A type-erased unit of work. The `'static` bound is satisfied by
/// [`WorkerPool::run`] erasing the caller's lifetime *after* arranging to
/// outwait every job it submits.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The shared work queue: a deque of pending jobs plus a shutdown flag,
/// guarded by one mutex with a condvar for sleeping workers. A second
/// condvar (`idle`) signals the drained state — queue empty *and* no
/// worker mid-job — for [`WorkerPool::drain`].
struct Queue {
    state: Mutex<QueueState>,
    ready: Condvar,
    idle: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// Number of workers currently executing a job (popped but not yet
    /// finished).
    active: usize,
    shutdown: bool,
}

thread_local! {
    /// Set while the current thread is executing a pooled job, so nested
    /// [`WorkerPool::run`] calls fall back to inline execution.
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A fixed-size pool of long-lived worker threads fed by a channel-style
/// work queue.
///
/// Most callers want the process-wide [`global`] pool; dedicated pools
/// are for tests and for isolating workloads with different lifetimes.
pub struct WorkerPool {
    queue: std::sync::Arc<Queue>,
    workers: usize,
}

impl WorkerPool {
    /// A pool with `workers` threads (at least 1), started immediately.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let queue = std::sync::Arc::new(Queue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                active: 0,
                shutdown: false,
            }),
            ready: Condvar::new(),
            idle: Condvar::new(),
        });
        for i in 0..workers {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::Builder::new()
                .name(format!("vecdb-pool-{i}"))
                .spawn(move || worker_loop(&queue))
                .expect("spawning a pool worker");
        }
        Self { queue, workers }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Blocks until the pool is quiescent: the job queue is empty and no
    /// worker is mid-job. The serving layer's shutdown path calls this
    /// after the last batch returns, guaranteeing no pooled work is
    /// still running when shutdown completes.
    ///
    /// Quiescence is instantaneous — a caller submitting concurrently
    /// with `drain` can make the pool busy again right after it returns.
    /// Callers that need a stable answer (shutdown paths) must first
    /// stop submitting.
    pub fn drain(&self) {
        let mut state = self
            .queue
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while !(state.jobs.is_empty() && state.active == 0) {
            state = self
                .queue
                .idle
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Runs `f(0), f(1), …, f(n-1)` on the pool and returns the results
    /// in index order. Blocks until every job has finished — that wait
    /// is what lets the jobs borrow from the caller's stack.
    ///
    /// Falls back to inline sequential execution when `n <= 1` (nothing
    /// to fan out) or when called from inside a pooled job (queueing and
    /// blocking from a worker could deadlock the fixed-size pool).
    ///
    /// # Panics
    /// Re-raises the first panic raised by any job, after all jobs have
    /// settled.
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 || IN_POOL_WORKER.with(std::cell::Cell::get) {
            return (0..n).map(f).collect();
        }

        type Slot<T> = Mutex<Option<std::thread::Result<T>>>;
        let slots: Vec<Slot<T>> = (0..n).map(|_| Mutex::new(None)).collect();
        let latch = Latch::new(n);

        {
            // Erase the borrow lifetimes: sound because this block (and
            // the latch wait below) strictly outlives every job — `run`
            // does not return until the latch reaches zero.
            let submit = |i: usize| {
                let f = &f;
                let slots = &slots;
                let latch = &latch;
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)));
                    *slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
                    latch.count_down();
                });
                // SAFETY: the job only borrows `f`, `slots`, and `latch`,
                // all of which live until `latch.wait()` below returns —
                // and the latch is counted down exactly once per job, as
                // the last thing the job does.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
                job
            };
            let mut state = self
                .queue
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for i in 0..n {
                state.jobs.push_back(submit(i));
            }
            drop(state);
            if n >= self.workers {
                self.queue.ready.notify_all();
            } else {
                for _ in 0..n {
                    self.queue.ready.notify_one();
                }
            }
            latch.wait();
        }

        slots
            .into_iter()
            .map(|slot| {
                let result = slot
                    .into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("latch reached zero with a result missing");
                match result {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let mut state = self
            .queue
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.shutdown = true;
        drop(state);
        self.queue.ready.notify_all();
        // Workers drain outstanding jobs and exit; they hold their own
        // Arc to the queue, so no join is required for soundness (jobs
        // never outlive the `run` call that submitted them).
    }
}

/// A countdown latch: `wait` blocks until `count_down` has been called
/// `n` times.
struct Latch {
    remaining: Mutex<usize>,
    zero: Condvar,
}

impl Latch {
    fn new(n: usize) -> Self {
        Self {
            remaining: Mutex::new(n),
            zero: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut remaining = self
            .remaining
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *remaining -= 1;
        if *remaining == 0 {
            self.zero.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self
            .remaining
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while *remaining > 0 {
            remaining = self
                .zero
                .wait(remaining)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

fn worker_loop(queue: &Queue) {
    IN_POOL_WORKER.with(|flag| flag.set(true));
    loop {
        let job = {
            let mut state = queue
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    state.active += 1;
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = queue
                    .ready
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        job();
        let mut state = queue
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.active -= 1;
        if state.jobs.is_empty() && state.active == 0 {
            queue.idle.notify_all();
        }
        drop(state);
    }
}

/// The process-wide pool shared by every sharded backend and batch
/// executor: one thread per available core (at least 2), created on
/// first use.
pub fn global() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let cores = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
        WorkerPool::new(cores.max(2))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_returns_results_in_index_order() {
        let pool = WorkerPool::new(4);
        let out = pool.run(16, |i| i * 10);
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn run_borrows_caller_stack() {
        let pool = WorkerPool::new(3);
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let doubled = pool.run(data.len(), |i| data[i] * 2);
        assert_eq!(doubled, vec![2, 4, 6, 8, 10, 12, 14, 16]);
    }

    #[test]
    fn run_handles_more_jobs_than_workers() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        let out = pool.run(64, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 64);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn nested_run_executes_inline_without_deadlock() {
        let pool = global();
        // Every outer job fans out again on the same pool; the inner
        // fan-outs must inline rather than queue-and-block.
        let out = pool.run(8, |i| pool.run(8, move |j| i * 8 + j).iter().sum::<usize>());
        let expect: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn run_zero_and_one() {
        let pool = WorkerPool::new(2);
        assert!(pool.run(0, |i| i).is_empty());
        assert_eq!(pool.run(1, |i| i + 1), vec![1]);
    }

    #[test]
    fn panic_in_job_propagates_after_all_jobs_settle() {
        let pool = WorkerPool::new(2);
        let completed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(8, |i| {
                if i == 3 {
                    panic!("job 3 exploded");
                }
                completed.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        assert_eq!(completed.load(Ordering::Relaxed), 7);
        // The pool survives a panicking job.
        assert_eq!(pool.run(4, |i| i).len(), 4);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        assert!(global().workers() >= 2);
        assert!(std::ptr::eq(global(), global()));
    }

    #[test]
    fn drain_on_idle_pool_returns_immediately() {
        let pool = WorkerPool::new(2);
        pool.drain();
        pool.run(4, |i| i);
        pool.drain();
    }

    #[test]
    fn drain_waits_for_in_flight_jobs() {
        use std::sync::mpsc;
        let pool = std::sync::Arc::new(WorkerPool::new(2));
        let completed = std::sync::Arc::new(AtomicUsize::new(0));
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Mutex::new(release_rx);

        let runner = {
            let pool = std::sync::Arc::clone(&pool);
            let completed = std::sync::Arc::clone(&completed);
            std::thread::spawn(move || {
                pool.run(8, |_| {
                    started_tx.send(()).expect("started signal");
                    release_rx
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .recv()
                        .expect("release signal");
                    completed.fetch_add(1, Ordering::SeqCst);
                });
            })
        };

        // At least one job is mid-execution (it told us so); release them
        // all, then drain must not return before every job finished.
        started_rx.recv().expect("a job started");
        for _ in 0..8 {
            release_tx.send(()).expect("release");
        }
        pool.drain();
        assert_eq!(completed.load(Ordering::SeqCst), 8);
        runner.join().expect("runner thread");
    }
}

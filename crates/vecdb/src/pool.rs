//! A persistent shared worker pool for query fan-out, built around
//! per-worker deques with shard-home affinity and work-stealing.
//!
//! The sharded search layers used to spawn one scoped OS thread per
//! shard per query; at microsecond-scale per-shard work the
//! ~20–50 µs spawn/join cost dominated end-to-end latency
//! (`BENCH_sharding.json` records the curve). The first pool replaced
//! that with long-lived workers fed by **one** shared channel queue —
//! cheap dispatch, but every job landed on whichever worker woke first,
//! so a shard's data migrated across cores on every fan-out and a
//! skewed shard could serialize behind unrelated work.
//!
//! This version gives each worker its **own deque** and makes placement
//! a first-class hint:
//!
//! - [`WorkerPool::run_homed`] enqueues job `i` on the deque of its
//!   *home worker* (`home(i) % workers`). Sharded backends pass the
//!   shard index as the home, so shard `i`'s work lands on the same
//!   worker — and, when the pool is core-bound, the same core — on
//!   every fan-out, keeping that shard's vectors warm in that core's
//!   cache.
//! - Idle workers **steal from the back of the busiest deque**, so a
//!   pathologically skewed shard (or a stalled home worker) never
//!   serializes the batch: affinity is a placement hint, never a
//!   constraint. A global pending-job count makes stealing lossless —
//!   every submitted job is reserved by exactly one worker.
//! - The [`cpu_bind`] seam pins workers to distinct allowed cores on
//!   Linux (`sched_setaffinity` through the already-linked libc — no
//!   new dependency) and degrades to a portable no-op elsewhere or when
//!   the kernel refuses. Set `VECDB_POOL_NO_PIN` to disable pinning.
//! - The **submitting thread participates**: instead of parking on the
//!   completion latch while workers wake up, it reserves and runs jobs
//!   itself through the same protocol. A 2-shard fan-out of
//!   microsecond-scale jobs typically finishes entirely on the caller
//!   before the first worker clears its futex wait — fan-out dispatch
//!   stays in single-digit microseconds instead of paying a context
//!   switch per call (the narrow rows of `BENCH_sharding.json`).
//!
//! [`WorkerPool::run`] keeps the scoped fan-out contract every sharded
//! backend relies on: it blocks until all submitted jobs finish, which
//! is what makes lending the caller's stack borrows to the workers
//! sound. Nested fan-outs are detected with a **thread-local in-pool
//! marker** carrying the pool's identity: a pooled job that fans out
//! again *on the same pool* executes inline (queue-and-wait from inside
//! a worker could deadlock once every worker blocks on jobs stuck
//! behind it), while fan-outs from foreign threads — e.g. the serving
//! layer's stage-2 refinement thread — enqueue normally and get real
//! parallelism.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Best-effort CPU core binding for pool workers: the seam the
/// shard-home affinity design pins through, with a portable no-op
/// fallback (non-Linux targets, restricted cpusets, failed syscalls).
pub mod cpu_bind {
    /// Logical cores the current thread is allowed to run on, in
    /// ascending order. Empty when the platform cannot report affinity
    /// (the no-op fallback — callers must treat binding as unavailable).
    #[must_use]
    pub fn allowed_cores() -> Vec<usize> {
        imp::allowed_cores()
    }

    /// Pins the calling thread to the `index`-th *allowed* core
    /// (wrapping), so worker `i` of a pool lands on a distinct core
    /// whenever the cpuset offers one per worker. Returns `false` — and
    /// changes nothing — when binding is unavailable or refused.
    pub fn bind_worker(index: usize) -> bool {
        let cores = imp::allowed_cores();
        if cores.is_empty() {
            return false;
        }
        imp::bind_to_core(cores[index % cores.len()])
    }

    #[cfg(target_os = "linux")]
    mod imp {
        /// 1024-bit cpu set, glibc's `cpu_set_t` default width.
        const WORDS: usize = 1024 / 64;

        // Declared directly against the libc every Rust binary on Linux
        // already links; pid 0 addresses the calling thread.
        extern "C" {
            fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
            fn sched_getaffinity(pid: i32, cpusetsize: usize, mask: *mut u64) -> i32;
        }

        pub fn allowed_cores() -> Vec<usize> {
            let mut mask = [0u64; WORDS];
            let ok = unsafe {
                sched_getaffinity(0, std::mem::size_of_val(&mask), mask.as_mut_ptr()) == 0
            };
            if !ok {
                return Vec::new();
            }
            (0..WORDS * 64)
                .filter(|c| mask[c / 64] >> (c % 64) & 1 == 1)
                .collect()
        }

        pub fn bind_to_core(core: usize) -> bool {
            if core >= WORDS * 64 {
                return false;
            }
            let mut mask = [0u64; WORDS];
            mask[core / 64] |= 1u64 << (core % 64);
            unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
        }
    }

    #[cfg(not(target_os = "linux"))]
    mod imp {
        pub fn allowed_cores() -> Vec<usize> {
            Vec::new()
        }

        pub fn bind_to_core(_core: usize) -> bool {
            false
        }
    }
}

/// A type-erased unit of work. The `'static` bound is satisfied by
/// [`WorkerPool::run`] erasing the caller's lifetime *after* arranging to
/// outwait every job it submits.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared coordination state: how many submitted jobs are not yet
/// reserved by a worker, how many workers are mid-job, and shutdown.
/// The deques themselves are per-worker; this counter is what makes
/// work-stealing lossless — a worker *reserves* a job here before
/// hunting for it, so jobs can never be dropped or double-run however
/// the steal race resolves.
struct Control {
    state: Mutex<ControlState>,
    ready: Condvar,
    idle: Condvar,
    /// Lock-free mirror of `state.pending`, so idle workers can
    /// spin-poll for work without taking the control lock — and without
    /// the submitter paying a futex syscall to wake them. On
    /// para-virtualized hosts a single no-waiter `notify_one` costs
    /// microseconds of syscall interception, which dominated
    /// microsecond-scale fan-outs (see `BENCH_sharding.json` narrow
    /// rows); every condvar here is therefore guarded so the syscall
    /// only happens when a thread is actually parked.
    pending_hint: AtomicUsize,
    /// Workers currently parked in `ready.wait` (mutated under the
    /// control lock; read by submitters to size their wakeups).
    ready_waiters: AtomicUsize,
    /// Threads parked in `drain` on the `idle` condvar.
    idle_waiters: AtomicUsize,
}

struct ControlState {
    /// Jobs pushed to some deque but not yet reserved by a worker.
    pending: usize,
    /// Workers that reserved a job and have not finished running it.
    active: usize,
    shutdown: bool,
}

/// Bounded pre-park spin (on the order of ten microseconds of
/// `spin_loop`): long enough that a steady stream of fan-outs keeps
/// workers hot and entirely syscall-free, short enough that an idle
/// pool parks quickly instead of starving the threads doing real work
/// on hosts with no spare cores.
const SPIN_ROUNDS: u32 = 1 << 12;

struct Shared {
    control: Control,
    /// One deque per worker; `run_homed` pushes each job on its home
    /// worker's deque, idle workers steal from the busiest.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Process-unique pool identity for the in-pool thread-local marker.
    id: usize,
}

thread_local! {
    /// The pool id the current thread is a worker of (0 = none). A
    /// nested [`WorkerPool::run`] on the *same* pool inlines; runs on
    /// other pools — or from non-pool threads like the serving layer's
    /// refinement stage — enqueue normally.
    static IN_POOL: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Source of process-unique pool ids (0 is reserved for "no pool").
static POOL_IDS: AtomicUsize = AtomicUsize::new(1);

/// A fixed-size pool of long-lived worker threads with per-worker
/// deques, shard-home placement, and work-stealing.
///
/// Most callers want the process-wide [`global`] pool; dedicated pools
/// are for tests and for isolating workloads with different lifetimes.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: usize,
}

impl WorkerPool {
    /// A pool with `workers` threads (at least 1), started immediately,
    /// with no core binding — the right default for short-lived and
    /// test pools, which would otherwise pile onto the first cores.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Self::with_binding(workers, false)
    }

    /// A pool whose workers additionally bind to distinct allowed cores
    /// when `bind_cores` is set (via [`cpu_bind`]; silently a no-op
    /// where binding is unavailable).
    #[must_use]
    pub fn with_binding(workers: usize, bind_cores: bool) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            control: Control {
                state: Mutex::new(ControlState {
                    pending: 0,
                    active: 0,
                    shutdown: false,
                }),
                ready: Condvar::new(),
                idle: Condvar::new(),
                pending_hint: AtomicUsize::new(0),
                ready_waiters: AtomicUsize::new(0),
                idle_waiters: AtomicUsize::new(0),
            },
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
        });
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("vecdb-pool-{i}"))
                .spawn(move || worker_loop(&shared, i, bind_cores))
                .expect("spawning a pool worker");
        }
        Self { shared, workers }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Blocks until the pool is quiescent: no pending job and no worker
    /// mid-job. The serving layer's shutdown path calls this after the
    /// last batch returns, guaranteeing no pooled work is still running
    /// when shutdown completes.
    ///
    /// Quiescence is instantaneous — a caller submitting concurrently
    /// with `drain` can make the pool busy again right after it returns.
    /// Callers that need a stable answer (shutdown paths) must first
    /// stop submitting.
    pub fn drain(&self) {
        let control = &self.shared.control;
        let mut state = control
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while !(state.pending == 0 && state.active == 0) {
            control.idle_waiters.fetch_add(1, Ordering::Relaxed);
            state = control
                .idle
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            control.idle_waiters.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Runs `f(0), f(1), …, f(n-1)` on the pool and returns the results
    /// in index order, with job `i` placed on worker `i % workers` —
    /// equivalent to [`WorkerPool::run_homed`] with the identity home
    /// function. Blocks until every job has finished — that wait is
    /// what lets the jobs borrow from the caller's stack.
    ///
    /// Falls back to inline sequential execution when `n <= 1` (nothing
    /// to fan out) or when called from inside a job of *this* pool
    /// (detected by the thread-local in-pool marker; queueing and
    /// blocking from a worker could deadlock the fixed-size pool).
    ///
    /// # Panics
    /// Re-raises the first panic raised by any job, after all jobs have
    /// settled.
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_homed(n, |i| i, f)
    }

    /// Like [`WorkerPool::run`], but job `i` is enqueued on the deque of
    /// worker `home(i) % workers` — its *home*. Sharded backends pass
    /// the shard index, so a shard's work lands on the same worker (and
    /// core, when bound) every fan-out while its data is warm there.
    /// Homes are placement hints only: idle workers steal from the
    /// busiest deque, so a skewed home never serializes the batch.
    ///
    /// The calling thread participates while it waits: it reserves and
    /// runs queued jobs through the same lossless protocol as the
    /// workers, so small fan-outs usually complete inline without a
    /// context switch. (A job picked up this way may belong to another
    /// concurrent fan-out on the same pool — executing it early is
    /// always sound.)
    ///
    /// # Panics
    /// Re-raises the first panic raised by any job, after all jobs have
    /// settled.
    pub fn run_homed<T, F, H>(&self, n: usize, home: H, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        H: Fn(usize) -> usize,
    {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 || IN_POOL.with(std::cell::Cell::get) == self.shared.id {
            return (0..n).map(f).collect();
        }

        type Slot<T> = Mutex<Option<std::thread::Result<T>>>;
        let slots: Vec<Slot<T>> = (0..n).map(|_| Mutex::new(None)).collect();
        let latch = Latch::new(n);

        {
            // Erase the borrow lifetimes: sound because this block (and
            // the latch wait below) strictly outlives every job — `run`
            // does not return until the latch reaches zero.
            let submit = |i: usize| {
                let f = &f;
                let slots = &slots;
                let latch = &latch;
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)));
                    *slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
                    latch.count_down();
                });
                // SAFETY: the job only borrows `f`, `slots`, and `latch`,
                // all of which live until `latch.wait()` below returns —
                // and the latch is counted down exactly once per job, as
                // the last thing the job does.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
                job
            };
            for i in 0..n {
                let worker = home(i) % self.workers;
                self.shared.deques[worker]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push_back(submit(i));
            }
            let control = &self.shared.control;
            let wakes = {
                // Publish after all pushes: a worker that reserves one of
                // these jobs is guaranteed to find a job in *some* deque
                // (at most `pending` reservations are ever hunting, and
                // the deques hold at least that many jobs).
                let mut state = control
                    .state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                state.pending += n;
                control.pending_hint.store(state.pending, Ordering::Release);
                // Wake at most n-1 *parked* workers: the caller is about
                // to help run jobs itself, and spinning (unparked) idle
                // workers see the pending hint without a syscall. Read
                // under the lock — parking requires it, so the count
                // cannot grow until we release.
                (n - 1).min(control.ready_waiters.load(Ordering::Relaxed))
            };
            if wakes >= self.workers {
                control.ready.notify_all();
            } else {
                for _ in 0..wakes {
                    control.ready.notify_one();
                }
            }
            // Help: reserve and run jobs through the workers' own
            // protocol until nothing is left to reserve or our batch is
            // done. Only then park on the latch (covers jobs a worker
            // reserved but has not finished).
            while !latch.done() {
                let reserved = {
                    let mut state = control
                        .state
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if state.pending > 0 {
                        state.pending -= 1;
                        control.pending_hint.store(state.pending, Ordering::Release);
                        state.active += 1;
                        true
                    } else {
                        false
                    }
                };
                if !reserved {
                    break;
                }
                let job = find_job(&self.shared, None);
                job();
                finish_job(control);
            }
            latch.wait();
        }

        slots
            .into_iter()
            .map(|slot| {
                let result = slot
                    .into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("latch reached zero with a result missing");
                match result {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let mut state = self
            .shared
            .control
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.shutdown = true;
        drop(state);
        self.shared.control.ready.notify_all();
        // Workers reserve and run every still-pending job, then exit;
        // they hold their own Arc to the shared state, so no join is
        // required for soundness (jobs never outlive the `run` call
        // that submitted them).
    }
}

/// A countdown latch: `wait` blocks until `count_down` has been called
/// `n` times. The count is a plain atomic so the common path — the
/// submitter polling while it helps run jobs, then spinning out the
/// last stragglers — never touches a lock or a futex; the condvar is
/// only armed (and its notify syscall only paid) when the waiter
/// actually parks.
struct Latch {
    /// `remaining << 1 | parked`: the job count and the "waiter is
    /// parked" bit share one atomic, which is what makes the teardown
    /// race impossible to lose. The waiter may free the latch the
    /// instant it observes the count at zero, so `count_down` must not
    /// touch `self` after the final decrement — *unless* that same
    /// decrement observed the parked bit, in which case the waiter is
    /// provably inside `zero.wait` (it parks while holding `parked` and
    /// cannot return, let alone free the latch, until the notifier
    /// releases the mutex).
    state: AtomicUsize,
    parked: Mutex<()>,
    zero: Condvar,
}

impl Latch {
    fn new(n: usize) -> Self {
        Self {
            state: AtomicUsize::new(n << 1),
            parked: Mutex::new(()),
            zero: Condvar::new(),
        }
    }

    /// Whether the count has reached zero (no waiting).
    fn done(&self) -> bool {
        self.state.load(Ordering::Acquire) >> 1 == 0
    }

    fn count_down(&self) {
        let prev = self.state.fetch_sub(2, Ordering::AcqRel);
        if prev >> 1 == 1 && prev & 1 == 1 {
            // Last job, waiter parked: safe to touch (see `state`), and
            // holding the mutex across the notify pins the waiter in
            // `zero.wait` until we are done with the latch.
            let guard = self
                .parked
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            self.zero.notify_all();
            drop(guard);
        }
    }

    fn wait(&self) {
        for _ in 0..SPIN_ROUNDS {
            if self.done() {
                return;
            }
            std::hint::spin_loop();
        }
        let mut guard = self
            .parked
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Announce the park under the lock. If the count hit zero
        // before the bit landed, the last job saw the bit unset and will
        // never notify — but then this check sees zero and we never
        // wait. Otherwise the last job is still outstanding and is
        // guaranteed to see the bit.
        if self.state.fetch_or(1, Ordering::AcqRel) >> 1 == 0 {
            return;
        }
        loop {
            guard = self
                .zero
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if self.done() {
                return;
            }
        }
    }
}

/// Bookkeeping after running a reserved job, shared by workers and
/// participating submitters: drop the active reservation and, when the
/// pool just went quiescent with someone blocked in [`WorkerPool::drain`],
/// wake them (guarded — the notify syscall is only paid for real
/// waiters).
fn finish_job(control: &Control) {
    let mut state = control
        .state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    state.active -= 1;
    if state.pending == 0 && state.active == 0 && control.idle_waiters.load(Ordering::Relaxed) > 0 {
        control.idle.notify_all();
    }
}

/// Pops the next job for `me` (`Some(worker)` for a pool worker, `None`
/// for a participating submitter with no deque of its own): the own
/// deque's front first (home-affine, FIFO within a shard), otherwise
/// the *back* of the busiest other deque (stealing the coldest work of
/// the most loaded worker). The caller has already reserved a job in
/// the control state, so a job is guaranteed to exist in some deque;
/// the loop only spins across momentary races with other hunters
/// mid-pop.
fn find_job(shared: &Shared, me: Option<usize>) -> Job {
    loop {
        if let Some(own) = me {
            if let Some(job) = shared.deques[own]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .pop_front()
            {
                return job;
            }
        }
        let mut busiest: Option<(usize, usize)> = None; // (len, index)
        for (i, deque) in shared.deques.iter().enumerate() {
            if Some(i) == me {
                continue;
            }
            let len = deque
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .len();
            if len > 0 && busiest.is_none_or(|(best, _)| len > best) {
                busiest = Some((len, i));
            }
        }
        if let Some((_, victim)) = busiest {
            if let Some(job) = shared.deques[victim]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .pop_back()
            {
                return job;
            }
        }
        std::hint::spin_loop();
    }
}

fn worker_loop(shared: &Shared, me: usize, bind_cores: bool) {
    if bind_cores {
        // Best effort: a refused bind leaves the thread free-floating.
        let _ = cpu_bind::bind_worker(me);
    }
    IN_POOL.with(|pool| pool.set(shared.id));
    let control = &shared.control;
    loop {
        // Reserve one job (or exit on drained shutdown). Spin on the
        // lock-free pending hint first: under a steady stream of
        // fan-outs the worker picks up the next job without a single
        // futex syscall on either side; only a genuinely idle pool
        // parks.
        let mut spins = SPIN_ROUNDS;
        loop {
            if spins > 0 && control.pending_hint.load(Ordering::Acquire) == 0 {
                spins -= 1;
                std::hint::spin_loop();
                continue;
            }
            let mut state = control
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let reserved = loop {
                if state.pending > 0 {
                    state.pending -= 1;
                    control.pending_hint.store(state.pending, Ordering::Release);
                    state.active += 1;
                    break true;
                }
                if state.shutdown {
                    return;
                }
                if spins > 0 {
                    // Spin budget left: release the lock and go back to
                    // polling the hint instead of parking.
                    break false;
                }
                control.ready_waiters.fetch_add(1, Ordering::Relaxed);
                state = control
                    .ready
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                control.ready_waiters.fetch_sub(1, Ordering::Relaxed);
            };
            if reserved {
                break;
            }
        }
        // …then go find it: home deque first, steal otherwise.
        let job = find_job(shared, Some(me));
        job();
        finish_job(control);
    }
}

/// The process-wide pool shared by every sharded backend and batch
/// executor: one thread per available core *minus one*, created on
/// first use — the submitting thread participates in execution while it
/// waits, so it is itself the remaining lane, and a full complement of
/// workers would only fight it for cores. Workers bind to distinct
/// cores (see [`cpu_bind`]) unless `VECDB_POOL_NO_PIN` is set; with the
/// sharded layers' index-keyed homes this gives every shard a stable
/// home core.
pub fn global() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let cores = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
        let bind = std::env::var_os("VECDB_POOL_NO_PIN").is_none();
        WorkerPool::with_binding(cores.saturating_sub(1).max(1), bind)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_returns_results_in_index_order() {
        let pool = WorkerPool::new(4);
        let out = pool.run(16, |i| i * 10);
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn run_borrows_caller_stack() {
        let pool = WorkerPool::new(3);
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let doubled = pool.run(data.len(), |i| data[i] * 2);
        assert_eq!(doubled, vec![2, 4, 6, 8, 10, 12, 14, 16]);
    }

    #[test]
    fn run_handles_more_jobs_than_workers() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        let out = pool.run(64, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 64);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn run_homed_single_home_is_rebalanced_by_stealing() {
        // Every job homed on worker 0: without stealing, one worker
        // would run the whole batch while three idle. The results must
        // still come back complete and in index order.
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        let out = pool.run_homed(
            32,
            |_| 0,
            |i| {
                counter.fetch_add(1, Ordering::Relaxed);
                i * 3
            },
        );
        assert_eq!(out, (0..32).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn nested_run_executes_inline_without_deadlock() {
        let pool = global();
        // Every outer job fans out again on the same pool; the inner
        // fan-outs must inline rather than queue-and-block.
        let out = pool.run(8, |i| pool.run(8, move |j| i * 8 + j).iter().sum::<usize>());
        let expect: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn foreign_pool_run_is_not_inlined() {
        // A job of pool A fanning out on pool B must reach B's real
        // execution protocol, not the same-pool inline path: the
        // in-pool marker is per-pool, not a global "in any pool" flag.
        // Proven by rendezvous — the two nested jobs wait for each
        // other, which the inline path's sequential execution could
        // never satisfy. (With the submitter participating, one job may
        // run on the submitting thread itself; that still rendezvouses.)
        let a = WorkerPool::new(2);
        let b = WorkerPool::new(2);
        let met = a.run(2, |i| {
            if i != 0 {
                return vec![true];
            }
            let arrived = AtomicUsize::new(0);
            b.run(2, |_| {
                arrived.fetch_add(1, Ordering::SeqCst);
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
                while arrived.load(Ordering::SeqCst) < 2 {
                    if std::time::Instant::now() > deadline {
                        return false;
                    }
                    std::hint::spin_loop();
                }
                true
            })
        });
        assert!(
            met.iter().flatten().all(|&ok| ok),
            "nested foreign fan-out ran sequentially: {met:?}"
        );
    }

    #[test]
    fn run_zero_and_one() {
        let pool = WorkerPool::new(2);
        assert!(pool.run(0, |i| i).is_empty());
        assert_eq!(pool.run(1, |i| i + 1), vec![1]);
    }

    #[test]
    fn panic_in_job_propagates_after_all_jobs_settle() {
        let pool = WorkerPool::new(2);
        let completed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(8, |i| {
                if i == 3 {
                    panic!("job 3 exploded");
                }
                completed.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        assert_eq!(completed.load(Ordering::Relaxed), 7);
        // The pool survives a panicking job.
        assert_eq!(pool.run(4, |i| i).len(), 4);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        assert!(global().workers() >= 1);
        assert!(std::ptr::eq(global(), global()));
    }

    #[test]
    fn cpu_bind_is_safe_to_call() {
        // Either real binding (Linux with an inspectable cpuset) or the
        // portable no-op — both must return without disturbing the
        // thread. Re-bind to every allowed core and end unrestricted
        // among them.
        let cores = cpu_bind::allowed_cores();
        for i in 0..cores.len() {
            cpu_bind::bind_worker(i);
        }
        if let Some(&first) = cores.first() {
            let _ = first;
        }
    }

    #[test]
    fn drain_on_idle_pool_returns_immediately() {
        let pool = WorkerPool::new(2);
        pool.drain();
        pool.run(4, |i| i);
        pool.drain();
    }

    #[test]
    fn drain_waits_for_in_flight_jobs() {
        use std::sync::mpsc;
        let pool = std::sync::Arc::new(WorkerPool::new(2));
        let completed = std::sync::Arc::new(AtomicUsize::new(0));
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Mutex::new(release_rx);

        let runner = {
            let pool = std::sync::Arc::clone(&pool);
            let completed = std::sync::Arc::clone(&completed);
            std::thread::spawn(move || {
                pool.run(8, |_| {
                    started_tx.send(()).expect("started signal");
                    release_rx
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .recv()
                        .expect("release signal");
                    completed.fetch_add(1, Ordering::SeqCst);
                });
            })
        };

        // At least one job is mid-execution (it told us so); release them
        // all, then drain must not return before every job finished.
        started_rx.recv().expect("a job started");
        for _ in 0..8 {
            release_tx.send(()).expect("release");
        }
        pool.drain();
        assert_eq!(completed.load(Ordering::SeqCst), 8);
        runner.join().expect("runner thread");
    }
}

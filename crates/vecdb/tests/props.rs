//! Property-based tests for the vector database.

use proptest::prelude::*;
use serde_json::json;
use vecdb::{
    Collection, CollectionConfig, Distance, Filter, FlatIndex, HnswConfig, HnswIndex, Payload,
    SearchParams,
};

fn arb_vectors(dim: usize, max: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-1.0f32..1.0, dim..=dim), 2..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hnsw_exact_match_is_top1(vectors in arb_vectors(8, 120), probe in 0usize..100) {
        let probe = probe % vectors.len();
        let inv: Vec<f32> = vectors.iter().map(|v| vecdb::inv_norm(v)).collect();
        let mut idx = HnswIndex::new(Distance::Euclid, HnswConfig::default());
        for i in 0..vectors.len() {
            idx.insert(i, &vectors, &inv);
        }
        let r = idx.search(&vectors[probe], 1, 64, &vectors, &inv, None);
        prop_assert_eq!(r.len(), 1);
        // The stored vector itself has distance 0; any returned vector at
        // distance 0 is acceptable (duplicates possible).
        prop_assert!(r[0].1 < 1e-6);
    }

    #[test]
    fn hnsw_results_sorted_and_within_k(vectors in arb_vectors(6, 100), k in 1usize..20) {
        let inv: Vec<f32> = vectors.iter().map(|v| vecdb::inv_norm(v)).collect();
        let mut idx = HnswIndex::new(Distance::Cosine, HnswConfig::default());
        for i in 0..vectors.len() {
            idx.insert(i, &vectors, &inv);
        }
        let q = vec![0.5f32; 6];
        let r = idx.search(&q, k, 64, &vectors, &inv, None);
        prop_assert!(r.len() <= k);
        prop_assert!(r.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn flat_search_matches_manual_argmin(vectors in arb_vectors(4, 60)) {
        let mut flat = FlatIndex::new(Distance::Euclid);
        for v in &vectors {
            flat.push(v.clone());
        }
        let q = vec![0.1f32, -0.2, 0.3, 0.0];
        let r = flat.search(&q, 1, None);
        let manual = vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (i, Distance::Euclid.distance(&q, v)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        prop_assert_eq!(r[0].0, manual.0);
    }

    #[test]
    fn filtered_search_never_leaks(
        vectors in arb_vectors(4, 80),
        min_lat in 0.0f64..0.5,
        span in 0.1f64..0.5,
    ) {
        let mut c = Collection::new(CollectionConfig::new(4));
        for (i, v) in vectors.iter().enumerate() {
            let lat = i as f64 / vectors.len() as f64;
            let payload = Payload::from_pairs(&[("lat", json!(lat)), ("lon", json!(0.0))]);
            c.insert(i as u64, v.clone(), payload).unwrap();
        }
        let f = Filter::geo_box(min_lat, -1.0, (min_lat + span).min(1.0), 1.0);
        let r = c
            .search(&[0.0, 0.0, 0.0, 0.0], &SearchParams::top_k(10).with_filter(f.clone()))
            .unwrap();
        let allowed = c.filter_ids(&f);
        for hit in r {
            prop_assert!(allowed.contains(&hit.id));
        }
    }

    #[test]
    fn exact_and_default_search_agree_on_top1(vectors in arb_vectors(8, 150)) {
        let mut c = Collection::new(CollectionConfig {
            distance: Distance::Euclid,
            ..CollectionConfig::new(8)
        });
        for (i, v) in vectors.iter().enumerate() {
            c.insert(i as u64, v.clone(), Payload::new()).unwrap();
        }
        let q = vec![0.0f32; 8];
        let exact = c.search(&q, &SearchParams::top_k(1).with_exact(true)).unwrap();
        let approx = c.search(&q, &SearchParams::top_k(1).with_ef(256)).unwrap();
        // With a wide beam on small data, HNSW top-1 distance equals exact
        // top-1 distance (ids may differ only on exact ties).
        prop_assert!((exact[0].score - approx[0].score).abs() < 1e-5);
    }
}

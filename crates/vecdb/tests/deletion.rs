//! Soft-deletion behaviour of collections.

use serde_json::json;
use vecdb::{Collection, CollectionConfig, Distance, Filter, Payload, SearchParams, VecDbError};

fn collection(n: usize) -> Collection {
    let mut c = Collection::new(CollectionConfig {
        distance: Distance::Euclid,
        ..CollectionConfig::new(2)
    });
    for i in 0..n as u64 {
        let payload = Payload::from_pairs(&[("lat", json!(i as f64)), ("lon", json!(0.0))]);
        c.insert(i, vec![i as f32, 0.0], payload).unwrap();
    }
    c
}

#[test]
fn deleted_points_vanish_from_search() {
    let mut c = collection(20);
    c.delete(5).unwrap();
    c.delete(6).unwrap();
    let r = c
        .search(&[5.4, 0.0], &SearchParams::top_k(3).with_exact(true))
        .unwrap();
    assert!(r.iter().all(|p| p.id != 5 && p.id != 6));
    // HNSW path too.
    let r2 = c
        .search(&[5.4, 0.0], &SearchParams::top_k(3).with_ef(64))
        .unwrap();
    assert!(r2.iter().all(|p| p.id != 5 && p.id != 6));
}

#[test]
fn deleted_points_vanish_from_lookups_and_filters() {
    let mut c = collection(10);
    c.delete(3).unwrap();
    assert!(matches!(
        c.payload(3),
        Err(VecDbError::PointNotFound { id: 3 })
    ));
    assert!(matches!(
        c.vector(3),
        Err(VecDbError::PointNotFound { id: 3 })
    ));
    let all = Filter::geo_box(-1.0, -1.0, 100.0, 1.0);
    assert!(!c.filter_ids(&all).contains(&3));
    assert_eq!(c.len(), 9);
}

#[test]
fn delete_twice_errors() {
    let mut c = collection(5);
    c.delete(2).unwrap();
    assert!(matches!(
        c.delete(2),
        Err(VecDbError::PointNotFound { id: 2 })
    ));
}

#[test]
fn id_reusable_after_delete() {
    let mut c = collection(5);
    c.delete(2).unwrap();
    c.insert(2, vec![100.0, 0.0], Payload::new()).unwrap();
    assert_eq!(c.len(), 5);
    let v = c.vector(2).unwrap();
    assert_eq!(v, &[100.0, 0.0]);
}

#[test]
fn duplicate_live_id_rejected() {
    let mut c = collection(5);
    assert!(matches!(
        c.insert(2, vec![0.0, 0.0], Payload::new()),
        Err(VecDbError::PointExists { id: 2 })
    ));
}

#[test]
fn delete_everything_empties_collection() {
    let mut c = collection(8);
    for i in 0..8 {
        c.delete(i).unwrap();
    }
    assert!(c.is_empty());
    let r = c.search(&[0.0, 0.0], &SearchParams::top_k(5)).unwrap();
    assert!(r.is_empty());
}

#[test]
fn update_payload_changes_filter_result() {
    let mut c = collection(5);
    let f = Filter::MatchKeyword {
        key: "tag".to_owned(),
        value: "special".to_owned(),
    };
    assert!(c.filter_ids(&f).is_empty());
    c.update_payload(1, Payload::from_pairs(&[("tag", json!("special"))]))
        .unwrap();
    assert_eq!(c.filter_ids(&f), vec![1]);
    assert!(matches!(
        c.update_payload(99, Payload::new()),
        Err(VecDbError::PointNotFound { id: 99 })
    ));
}

//! Property battery: the learned id index must be observably identical
//! to a `HashMap<PointId, usize>` under every operation interleaving —
//! hits, misses, overwrites, deletes, re-inserts after delete, and
//! lookups of ids that were never inserted. The learned layer is an
//! accelerator; these tests pin that it is never an oracle.

use std::collections::HashMap;

use proptest::prelude::*;
use vecdb::{LearnedIdIndex, PointId};

/// One mutation or probe against both implementations.
#[derive(Debug, Clone)]
enum Op {
    Insert(PointId, usize),
    Remove(PointId),
    Get(PointId),
}

/// Keys alternate between a dense low range (the friendly, near-linear
/// regime) and scattered high ids (stressing segment boundaries).
fn key_from(raw: u64, space: u64) -> PointId {
    let k = raw % space;
    if raw & 1 == 0 {
        k
    } else {
        k.wrapping_mul(0x9e37_79b9) | (1 << 40)
    }
}

fn arb_ops(space: u64, len: usize) -> impl Strategy<Value = Vec<Op>> {
    // The vendored proptest has no `prop_oneof`; encode the op choice
    // as a discriminant and map.
    prop::collection::vec(
        (0u8..3, 0u64..u64::MAX / 2, 0usize..1_000_000).prop_map(move |(d, raw, v)| {
            let k = key_from(raw, space);
            match d {
                0 => Op::Insert(k, v),
                1 => Op::Remove(k),
                _ => Op::Get(k),
            }
        }),
        1..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn behaves_exactly_like_hashmap(ops in arb_ops(512, 400)) {
        let mut learned = LearnedIdIndex::new();
        let mut truth: HashMap<PointId, usize> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    learned.insert(k, v);
                    truth.insert(k, v);
                }
                Op::Remove(k) => {
                    prop_assert_eq!(learned.remove(k), truth.remove(&k), "remove {}", k);
                }
                Op::Get(k) => {
                    prop_assert_eq!(learned.get(k), truth.get(&k).copied(), "get {}", k);
                }
            }
            prop_assert_eq!(learned.len(), truth.len());
        }
        // Final sweep: every key the truth knows, plus guaranteed misses.
        for (&k, &v) in &truth {
            prop_assert_eq!(learned.get(k), Some(v));
            prop_assert!(learned.contains_key(k));
        }
        for miss in [u64::MAX, u64::MAX - 1, 1 << 60] {
            prop_assert_eq!(learned.get(miss), truth.get(&miss).copied());
        }
    }

    #[test]
    fn bulk_then_churn(n in 1usize..3_000, churn in 0usize..500) {
        // Bulk sequential load (drives base rebuilds), then a
        // deterministic churn of deletes and re-inserts at new offsets —
        // the duplicates-after-delete case the satellite calls out.
        let mut learned = LearnedIdIndex::new();
        let mut truth: HashMap<PointId, usize> = HashMap::new();
        for i in 0..n as u64 {
            learned.insert(i * 3, i as usize);
            truth.insert(i * 3, i as usize);
        }
        for c in 0..churn as u64 {
            let k = (c * 7) % (n as u64 * 3);
            prop_assert_eq!(learned.remove(k), truth.remove(&k));
            let off = 500_000 + c as usize;
            learned.insert(k, off);
            truth.insert(k, off);
        }
        prop_assert_eq!(learned.len(), truth.len());
        for (&k, &v) in &truth {
            prop_assert_eq!(learned.get(k), Some(v), "key {}", k);
        }
        // Keys between the stride points were never inserted.
        for i in 0..(n as u64).min(100) {
            prop_assert_eq!(learned.get(i * 3 + 1), truth.get(&(i * 3 + 1)).copied());
        }
    }
}

//! Pins for the quantized-first scoring tier:
//!
//! - recall@k against full-precision ground truth stays ≥ 0.95 at the
//!   default `rerank_factor = 4`;
//! - `ScoringTier::Full` is bit-identical to the pre-quantization
//!   engine (the escape hatch the parity suites ride on);
//! - `ScoringTier::Auto` below the activation threshold is also
//!   bit-identical, so existing small-collection callers see no change
//!   without opting out.

use serde_json::json;
use vecdb::{
    Collection, CollectionConfig, Filter, Payload, ScoringTier, SearchParams, SearchStrategy,
};

const DIM: usize = 32;

fn pseudo(seed: u64, dim: usize) -> Vec<f32> {
    (0..dim)
        .map(|i| {
            let h = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(i as u64)
                .wrapping_mul(0xff51_afd7_ed55_8ccd);
            ((h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
        })
        .collect()
}

fn build(n: usize, tier: ScoringTier) -> Collection {
    let mut c = Collection::new(CollectionConfig {
        scoring_tier: tier,
        ..CollectionConfig::new(DIM)
    });
    for i in 0..n {
        let p = Payload::from_pairs(&[
            ("lat", json!((i % 100) as f64 * 0.01)),
            ("lon", json!((i / 100) as f64 * 0.01)),
        ]);
        c.insert(i as u64, pseudo(i as u64 + 1, DIM), p).unwrap();
    }
    c
}

#[test]
fn quantized_recall_at_10_is_pinned() {
    let n = 4_000;
    let k = 10;
    let full = build(n, ScoringTier::Full);
    let quant = build(n, ScoringTier::Quantized { rerank_factor: 4 });
    let queries: Vec<Vec<f32>> = (0..50u64).map(|q| pseudo(q + 77, DIM)).collect();
    let mut hits = 0usize;
    let mut total = 0usize;
    for q in &queries {
        let params = SearchParams::top_k(k).with_strategy(SearchStrategy::Exact);
        let truth = full.search(q, &params).unwrap();
        let got = quant.search(q, &params).unwrap();
        let truth_ids: Vec<u64> = truth.iter().map(|h| h.id).collect();
        hits += got.iter().filter(|h| truth_ids.contains(&h.id)).count();
        total += k;
    }
    let recall = hits as f64 / total as f64;
    assert!(
        recall >= 0.95,
        "quantized recall@{k} = {recall:.3}, expected >= 0.95"
    );
    // And rerank keeps reported scores full-precision: every returned
    // (id, score) must match, bit for bit, what the full-precision
    // engine scores that id at.
    let q = pseudo(123_456, DIM);
    let params = SearchParams::top_k(k).with_strategy(SearchStrategy::Exact);
    for h in quant.search(&q, &params).unwrap() {
        let exact = full.knn_among(&q, &[h.id], 1).unwrap();
        assert_eq!(
            h.score.to_bits(),
            exact[0].score.to_bits(),
            "id {}: reranked score must be the full-precision score",
            h.id
        );
    }
}

#[test]
fn full_tier_is_bit_identical_to_auto_below_threshold() {
    // Below AUTO_QUANT_THRESHOLD, Auto never activates the tier: the
    // two configurations must produce bit-identical results on every
    // strategy, filtered or not.
    let n = 2_000;
    assert!(n < vecdb::AUTO_QUANT_THRESHOLD);
    let full = build(n, ScoringTier::Full);
    let auto = build(n, ScoringTier::Auto);
    let filter = Filter::geo_box(0.1, 0.0, 0.8, 0.2);
    for strategy in [
        SearchStrategy::Exact,
        SearchStrategy::Hnsw,
        SearchStrategy::Auto,
    ] {
        for q_seed in 0..20u64 {
            let q = pseudo(q_seed + 9_000, DIM);
            let params = SearchParams::top_k(10)
                .with_strategy(strategy)
                .with_filter(filter.clone());
            let a = full.search(&q, &params).unwrap();
            let b = auto.search(&q, &params).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id, "strategy {strategy:?} seed {q_seed}");
                assert_eq!(
                    x.score.to_bits(),
                    y.score.to_bits(),
                    "strategy {strategy:?} seed {q_seed}: scores differ in bits"
                );
            }
        }
    }
}

#[test]
fn quantized_batch_matches_sequential_bitwise() {
    // The batched paths run the shared sequential kernel per query when
    // the tier is active; this pins that construction.
    let n = 3_000;
    let c = build(n, ScoringTier::Quantized { rerank_factor: 4 });
    let queries: Vec<Vec<f32>> = (0..16).map(|i| pseudo(i + 31_337, DIM)).collect();
    let refs: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();
    let params = SearchParams::top_k(7).with_strategy(SearchStrategy::Exact);
    let batched = c.search_batch(&refs, &params).unwrap();
    for (q, b) in queries.iter().zip(&batched) {
        let s = c.search_planned(q, &params).unwrap();
        assert_eq!(s.hits.len(), b.hits.len());
        for (x, y) in s.hits.iter().zip(&b.hits) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    // knn_among / knn_among_batch parity over an explicit candidate set.
    let ids: Vec<u64> = (0..n as u64).step_by(2).collect();
    let batched = c.knn_among_batch(&refs, &ids, 9).unwrap();
    for (q, b) in queries.iter().zip(&batched) {
        let s = c.knn_among(q, &ids, 9).unwrap();
        assert_eq!(s.len(), b.len());
        for (x, y) in s.iter().zip(b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }
}

#[test]
fn quantized_tier_activates_and_reports_memory() {
    let c = build(200, ScoringTier::Quantized { rerank_factor: 4 });
    let fp = c.memory_footprint();
    assert!(fp.quant_bytes > 0, "forced tier must build the code store");
    assert!(
        fp.quant_bytes < fp.vector_bytes / 2,
        "codes {} should be far smaller than vectors {}",
        fp.quant_bytes,
        fp.vector_bytes
    );
    assert!(fp.resident_bytes() < fp.total_bytes());

    // Auto below threshold: no quantized store, resident == total.
    let small = build(200, ScoringTier::Auto);
    let fp = small.memory_footprint();
    assert_eq!(fp.quant_bytes, 0);
    assert_eq!(fp.resident_bytes(), fp.total_bytes());
}

#[test]
fn deletes_are_respected_by_quantized_scans() {
    let mut c = build(2_000, ScoringTier::Quantized { rerank_factor: 4 });
    let q = pseudo(55, DIM);
    let params = SearchParams::top_k(5).with_strategy(SearchStrategy::Exact);
    let before = c.search(&q, &params).unwrap();
    // Delete the top hit: it must vanish from subsequent results.
    c.delete(before[0].id).unwrap();
    let after = c.search(&q, &params).unwrap();
    assert!(after.iter().all(|h| h.id != before[0].id));
}

//! Property-based tests for the text retrieval substrate.

use proptest::prelude::*;
use textindex::{Bm25Model, InvertedIndex, SparseVector, TfIdfModel, Tokenizer};

fn arb_word() -> impl Strategy<Value = String> {
    "[a-z]{2,8}"
}

fn arb_doc() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_word(), 1..30).prop_map(|ws| ws.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn raw_tokenizer_is_idempotent(doc in arb_doc()) {
        // Idempotence holds for the raw tokenizer; the stemming variant is
        // deliberately *not* idempotent (Porter-family stemmers never are:
        // "aaased" → "aaas" → "aaa"), so it only guarantees normal form.
        let t = Tokenizer::raw();
        let once = t.tokenize(&doc);
        let twice = t.tokenize(&once.join(" "));
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn stemming_tokenizer_output_is_normalized(doc in arb_doc()) {
        let t = Tokenizer::new();
        for tok in t.tokenize(&doc) {
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.chars().all(|c| c.is_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn and_query_results_contain_all_terms(docs in prop::collection::vec(arb_doc(), 1..20)) {
        let mut idx = InvertedIndex::new();
        for d in &docs {
            idx.add_document(d);
        }
        // Query with the first two tokens of the first document.
        let t = Tokenizer::new();
        let toks = t.tokenize(&docs[0]);
        if toks.len() >= 2 {
            let q = format!("{} {}", toks[0], toks[1]);
            let hits = idx.and_query(&q);
            // Doc 0 must be among the hits.
            prop_assert!(hits.contains(&0));
            // Every hit contains both tokens.
            for h in hits {
                let dtoks = t.tokenize(&docs[h as usize]);
                prop_assert!(dtoks.contains(&toks[0]));
                prop_assert!(dtoks.contains(&toks[1]));
            }
        }
    }

    #[test]
    fn and_is_subset_of_or(docs in prop::collection::vec(arb_doc(), 1..20), q in arb_doc()) {
        let mut idx = InvertedIndex::new();
        for d in &docs {
            idx.add_document(d);
        }
        let and: Vec<_> = idx.and_query(&q);
        let or: Vec<_> = idx.or_query(&q).into_iter().map(|(d, _)| d).collect();
        for d in and {
            prop_assert!(or.contains(&d));
        }
    }

    #[test]
    fn tfidf_self_similarity_is_maximal(docs in prop::collection::vec(arb_doc(), 2..15)) {
        let m = TfIdfModel::fit_documents(&docs);
        // A document queried with its own text ranks itself at least as
        // high as any other document.
        let ranked = m.rank(&docs[0], &(0..docs.len() as u32).collect::<Vec<_>>());
        let self_score = ranked.iter().find(|(d, _)| *d == 0).unwrap().1;
        prop_assert!(ranked.iter().all(|&(_, s)| s <= self_score + 1e-6));
    }

    #[test]
    fn tfidf_scores_bounded(docs in prop::collection::vec(arb_doc(), 2..15), q in arb_doc()) {
        let m = TfIdfModel::fit_documents(&docs);
        for d in 0..docs.len() as u32 {
            let s = m.similarity(&q, d);
            prop_assert!((-1e-6..=1.0 + 1e-6).contains(&s), "score {s}");
        }
    }

    #[test]
    fn bm25_scores_nonnegative(docs in prop::collection::vec(arb_doc(), 2..15), q in arb_doc()) {
        let mut idx = InvertedIndex::new();
        for d in &docs {
            idx.add_document(d);
        }
        let m = Bm25Model::new(idx);
        for (_, s) in m.rank_all(&q) {
            prop_assert!(s >= 0.0);
        }
    }

    #[test]
    fn sparse_dot_is_commutative_and_cauchy_schwarz(
        a in prop::collection::vec((0u32..100, -5.0f32..5.0), 0..20),
        b in prop::collection::vec((0u32..100, -5.0f32..5.0), 0..20),
    ) {
        let va = SparseVector::from_pairs(a);
        let vb = SparseVector::from_pairs(b);
        prop_assert!((va.dot(&vb) - vb.dot(&va)).abs() < 1e-3);
        prop_assert!(va.dot(&vb).abs() <= va.norm() * vb.norm() + 1e-3);
        prop_assert!(va.cosine(&vb).abs() <= 1.0 + 1e-5);
    }
}

//! TF-IDF vectorization and cosine ranking — the stronger of the paper's
//! two baselines ("TF-IDF is more accurate, despite being a simpler
//! model").

use serde::{Deserialize, Serialize};

use crate::inverted::{DocId, InvertedIndex};
use crate::sparse::SparseVector;

/// A TF-IDF model fit on a corpus (via an [`InvertedIndex`]).
///
/// Term weighting is the standard `tf · idf` scheme with
/// `idf(t) = ln((N + 1) / (df(t) + 1)) + 1` (smoothed, always positive),
/// and document vectors are L2-normalized so ranking reduces to dot
/// products.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TfIdfModel {
    index: InvertedIndex,
    idf: Vec<f32>,
    doc_vectors: Vec<SparseVector>,
}

impl TfIdfModel {
    /// Fits TF-IDF on the documents already in `index`.
    #[must_use]
    pub fn fit(index: InvertedIndex) -> Self {
        let n = index.num_docs() as f32;
        let vocab_len = index.vocab().len();
        let mut idf = Vec::with_capacity(vocab_len);
        for t in 0..vocab_len as u32 {
            let df = index.doc_freq(t) as f32;
            idf.push(((n + 1.0) / (df + 1.0)).ln() + 1.0);
        }
        // Build normalized document vectors by walking all postings.
        let mut pairs: Vec<Vec<(u32, f32)>> = vec![Vec::new(); index.num_docs()];
        for t in 0..vocab_len as u32 {
            for p in index.postings(t) {
                pairs[p.doc as usize].push((t, p.tf as f32 * idf[t as usize]));
            }
        }
        let doc_vectors = pairs
            .into_iter()
            .map(|ps| {
                let mut v = SparseVector::from_pairs(ps);
                v.normalize();
                v
            })
            .collect();
        Self {
            index,
            idf,
            doc_vectors,
        }
    }

    /// Convenience: build the index from raw documents and fit.
    #[must_use]
    pub fn fit_documents<S: AsRef<str>>(docs: &[S]) -> Self {
        let mut index = InvertedIndex::new();
        for d in docs {
            index.add_document(d.as_ref());
        }
        Self::fit(index)
    }

    /// The underlying inverted index.
    #[must_use]
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Number of documents in the model.
    #[must_use]
    pub fn num_docs(&self) -> usize {
        self.doc_vectors.len()
    }

    /// The normalized TF-IDF vector of a document.
    #[must_use]
    pub fn doc_vector(&self, doc: DocId) -> Option<&SparseVector> {
        self.doc_vectors.get(doc as usize)
    }

    /// Vectorizes free query text (L2-normalized).
    #[must_use]
    pub fn vectorize_query(&self, text: &str) -> SparseVector {
        let terms = self.index.query_terms(text);
        let mut pairs: Vec<(u32, f32)> = Vec::with_capacity(terms.len());
        // tf within the query:
        let mut sorted = terms;
        sorted.sort_unstable();
        let mut i = 0;
        while i < sorted.len() {
            let t = sorted[i];
            let mut tf = 0u32;
            while i < sorted.len() && sorted[i] == t {
                tf += 1;
                i += 1;
            }
            pairs.push((t, tf as f32 * self.idf[t as usize]));
        }
        let mut v = SparseVector::from_pairs(pairs);
        v.normalize();
        v
    }

    /// Cosine similarity between query text and a document.
    #[must_use]
    pub fn similarity(&self, query: &str, doc: DocId) -> f32 {
        let q = self.vectorize_query(query);
        self.doc_vectors
            .get(doc as usize)
            .map(|d| q.dot(d))
            .unwrap_or(0.0)
    }

    /// Ranks a candidate set of documents by cosine similarity to the
    /// query, descending; stable by doc id on ties.
    #[must_use]
    pub fn rank(&self, query: &str, candidates: &[DocId]) -> Vec<(DocId, f32)> {
        let q = self.vectorize_query(query);
        let mut scored: Vec<(DocId, f32)> = candidates
            .iter()
            .map(|&d| {
                let s = self
                    .doc_vectors
                    .get(d as usize)
                    .map(|v| q.dot(v))
                    .unwrap_or(0.0);
                (d, s)
            })
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TfIdfModel {
        TfIdfModel::fit_documents(&[
            "cozy cafe with great coffee and fresh pastries",
            "sports bar showing football games, chicken wings on the menu",
            "coffee roastery, espresso bar, pour over coffee",
            "ice cream parlor with milkshakes",
        ])
    }

    #[test]
    fn identical_doc_query_scores_highest() {
        let m = model();
        let ranked = m.rank("coffee espresso roastery", &[0, 1, 2, 3]);
        assert_eq!(ranked[0].0, 2);
        assert!(ranked[0].1 > ranked[1].1);
    }

    #[test]
    fn doc_vectors_are_normalized() {
        let m = model();
        for d in 0..m.num_docs() as u32 {
            let n = m.doc_vector(d).unwrap().norm();
            assert!((n - 1.0).abs() < 1e-5, "doc {d} norm {n}");
        }
    }

    #[test]
    fn unrelated_query_scores_zero() {
        let m = model();
        assert_eq!(m.similarity("sushi sashimi", 0), 0.0);
    }

    #[test]
    fn rare_terms_weigh_more_than_common() {
        // "coffee" appears in 2 docs, "football" in 1 → idf(football) > idf(coffee).
        let m = model();
        let s_football = m.similarity("football", 1);
        let s_coffee = m.similarity("coffee", 1);
        assert!(s_football > s_coffee);
    }

    #[test]
    fn paraphrase_fails_surface_matching() {
        // The paper's core motivation: a semantic paraphrase ("watch the
        // game") scores 0 unless it shares stemmed surface forms; "game"
        // does match "games", but "catch the match tonight" does not.
        let m = model();
        assert_eq!(m.similarity("catch tonight's match", 1), 0.0);
        assert!(m.similarity("watch football game", 1) > 0.0);
    }

    #[test]
    fn rank_is_stable_on_ties() {
        let m = model();
        let ranked = m.rank("zzz unknown terms", &[0, 1, 2, 3]);
        let ids: Vec<_> = ranked.iter().map(|(d, _)| *d).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}

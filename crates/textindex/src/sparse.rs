//! Sorted sparse vectors with dot product and cosine similarity.

use serde::{Deserialize, Serialize};

/// A sparse vector: parallel `(index, value)` arrays sorted by index.
///
/// Used for TF-IDF document vectors, where dimensionality equals the
/// vocabulary size but documents touch only dozens of terms.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SparseVector {
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl SparseVector {
    /// An all-zero vector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a vector from unsorted `(index, value)` pairs, summing
    /// duplicates and dropping zeros.
    #[must_use]
    pub fn from_pairs(mut pairs: Vec<(u32, f32)>) -> Self {
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut indices = Vec::with_capacity(pairs.len());
        let mut values = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            if let Some(&last) = indices.last() {
                if last == i {
                    *values.last_mut().expect("parallel arrays") += v;
                    continue;
                }
            }
            indices.push(i);
            values.push(v);
        }
        // Drop explicit zeros (possible after duplicate summing).
        let mut out_i = Vec::with_capacity(indices.len());
        let mut out_v = Vec::with_capacity(values.len());
        for (i, v) in indices.into_iter().zip(values) {
            if v != 0.0 {
                out_i.push(i);
                out_v.push(v);
            }
        }
        Self {
            indices: out_i,
            values: out_v,
        }
    }

    /// Number of non-zero entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Whether the vector is all-zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Iterates `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Euclidean norm.
    #[must_use]
    pub fn norm(&self) -> f32 {
        self.values.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Scales the vector so its norm is 1 (no-op for the zero vector).
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for v in &mut self.values {
                *v /= n;
            }
        }
    }

    /// Sparse dot product via sorted-merge.
    #[must_use]
    pub fn dot(&self, other: &SparseVector) -> f32 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0.0f32;
        while i < self.indices.len() && j < other.indices.len() {
            match self.indices[i].cmp(&other.indices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.values[i] * other.values[j];
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Cosine similarity in `[-1, 1]`; 0 if either vector is zero.
    #[must_use]
    pub fn cosine(&self, other: &SparseVector) -> f32 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_sums() {
        let v = SparseVector::from_pairs(vec![(5, 1.0), (2, 2.0), (5, 3.0)]);
        let entries: Vec<_> = v.iter().collect();
        assert_eq!(entries, vec![(2, 2.0), (5, 4.0)]);
    }

    #[test]
    fn from_pairs_drops_cancelled_zeros() {
        let v = SparseVector::from_pairs(vec![(1, 1.0), (1, -1.0), (2, 3.0)]);
        assert_eq!(v.nnz(), 1);
    }

    #[test]
    fn dot_of_disjoint_is_zero() {
        let a = SparseVector::from_pairs(vec![(0, 1.0), (2, 1.0)]);
        let b = SparseVector::from_pairs(vec![(1, 1.0), (3, 1.0)]);
        assert_eq!(a.dot(&b), 0.0);
    }

    #[test]
    fn dot_overlapping() {
        let a = SparseVector::from_pairs(vec![(0, 1.0), (2, 2.0), (7, 3.0)]);
        let b = SparseVector::from_pairs(vec![(2, 4.0), (7, 0.5)]);
        assert_eq!(a.dot(&b), 8.0 + 1.5);
    }

    #[test]
    fn cosine_of_identical_is_one() {
        let a = SparseVector::from_pairs(vec![(0, 3.0), (2, 4.0)]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_with_zero_vector_is_zero() {
        let a = SparseVector::from_pairs(vec![(0, 3.0)]);
        let z = SparseVector::new();
        assert_eq!(a.cosine(&z), 0.0);
        assert_eq!(z.cosine(&z), 0.0);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut a = SparseVector::from_pairs(vec![(0, 3.0), (1, 4.0)]);
        a.normalize();
        assert!((a.norm() - 1.0).abs() < 1e-6);
    }
}

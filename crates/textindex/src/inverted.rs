//! Inverted index: term → postings with term frequencies.

use serde::{Deserialize, Serialize};

use crate::tokenizer::Tokenizer;
use crate::vocab::{TermId, Vocabulary};

/// Dense document id within one index.
pub type DocId = u32;

/// One posting: a document and the term's frequency in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Posting {
    /// Document containing the term.
    pub doc: DocId,
    /// Term frequency in that document.
    pub tf: u32,
}

/// Aggregate statistics of one conjunctive keyword query against an
/// index — the feature source a cost-based planner reads to decide
/// whether keyword-first traversal (IR-tree) beats spatial-first
/// filtering. Computed from the vocabulary and posting metadata alone;
/// no posting list is walked.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryTermStats {
    /// Distinct query terms present in the corpus vocabulary.
    pub known_terms: usize,
    /// Distinct query tokens absent from the corpus — one such token
    /// makes a conjunctive (AND) match impossible.
    pub unknown_terms: usize,
    /// Smallest document frequency among the known terms (0 when there
    /// are none): the tightest upper bound on the AND-result size.
    pub min_doc_freq: usize,
    /// Total posting-list length across the known terms — the work a
    /// sorted-list intersection touches in the worst case.
    pub total_posting_len: usize,
    /// Estimated number of documents matching **all** terms, under the
    /// usual attribute-independence assumption
    /// (`N * prod(df_i / N)`, and exactly 0 when any term is unknown).
    pub estimated_and_matches: f64,
}

/// A classic inverted index over a corpus of documents.
///
/// Documents are added once via [`InvertedIndex::add_document`]; postings
/// are kept sorted by doc id (documents are added in increasing order) so
/// AND-queries are sorted-list intersections.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InvertedIndex {
    vocab: Vocabulary,
    postings: Vec<Vec<Posting>>,
    doc_lens: Vec<u32>,
    #[serde(skip, default = "Tokenizer::new")]
    tokenizer: Tokenizer,
}

impl InvertedIndex {
    /// An empty index with the default tokenizer.
    #[must_use]
    pub fn new() -> Self {
        Self {
            vocab: Vocabulary::new(),
            postings: Vec::new(),
            doc_lens: Vec::new(),
            tokenizer: Tokenizer::new(),
        }
    }

    /// An empty index with a custom tokenizer.
    #[must_use]
    pub fn with_tokenizer(tokenizer: Tokenizer) -> Self {
        Self {
            vocab: Vocabulary::new(),
            postings: Vec::new(),
            doc_lens: Vec::new(),
            tokenizer,
        }
    }

    /// Adds a document, returning its id.
    pub fn add_document(&mut self, text: &str) -> DocId {
        let doc = self.doc_lens.len() as DocId;
        let tokens = self.tokenizer.tokenize(text);
        self.doc_lens.push(tokens.len() as u32);
        // Count term frequencies for this document.
        let mut ids = self.vocab.intern_all(&tokens);
        ids.sort_unstable();
        let mut i = 0;
        while i < ids.len() {
            let term = ids[i];
            let mut tf = 0u32;
            while i < ids.len() && ids[i] == term {
                tf += 1;
                i += 1;
            }
            let t = term as usize;
            if t >= self.postings.len() {
                self.postings.resize_with(t + 1, Vec::new);
            }
            self.postings[t].push(Posting { doc, tf });
        }
        doc
    }

    /// Removes a document's postings. `text` must be the exact text the
    /// document was last indexed with — the live-update path keeps the
    /// authoritative copy (the dataset object) and hands it back here.
    /// The doc id itself stays allocated (ids are dense positions shared
    /// with the dataset), so `num_docs` does not shrink; the document
    /// simply stops matching any term and its length drops to zero.
    pub fn remove_document(&mut self, doc: DocId, text: &str) {
        let mut ids = self.vocab.lookup_all(&self.tokenizer.tokenize(text));
        ids.sort_unstable();
        ids.dedup();
        for term in ids {
            if let Some(posts) = self.postings.get_mut(term as usize) {
                if let Ok(i) = posts.binary_search_by_key(&doc, |p| p.doc) {
                    posts.remove(i);
                }
            }
        }
        if let Some(len) = self.doc_lens.get_mut(doc as usize) {
            *len = 0;
        }
    }

    /// Re-indexes document `doc` in place: removes `old_text`'s postings
    /// and inserts `new_text`'s at the same id, keeping every posting
    /// list sorted by doc id so AND-queries stay sorted intersections.
    pub fn update_document(&mut self, doc: DocId, old_text: &str, new_text: &str) {
        self.remove_document(doc, old_text);
        let tokens = self.tokenizer.tokenize(new_text);
        if let Some(len) = self.doc_lens.get_mut(doc as usize) {
            *len = tokens.len() as u32;
        }
        let mut ids = self.vocab.intern_all(&tokens);
        ids.sort_unstable();
        let mut i = 0;
        while i < ids.len() {
            let term = ids[i];
            let mut tf = 0u32;
            while i < ids.len() && ids[i] == term {
                tf += 1;
                i += 1;
            }
            let t = term as usize;
            if t >= self.postings.len() {
                self.postings.resize_with(t + 1, Vec::new);
            }
            let posts = &mut self.postings[t];
            let at = posts
                .binary_search_by_key(&doc, |p| p.doc)
                .unwrap_or_else(|e| e);
            posts.insert(at, Posting { doc, tf });
        }
    }

    /// Number of documents.
    #[must_use]
    pub fn num_docs(&self) -> usize {
        self.doc_lens.len()
    }

    /// Token length of document `doc`.
    #[must_use]
    pub fn doc_len(&self, doc: DocId) -> u32 {
        self.doc_lens.get(doc as usize).copied().unwrap_or(0)
    }

    /// Mean document length (0 for an empty index).
    #[must_use]
    pub fn avg_doc_len(&self) -> f32 {
        if self.doc_lens.is_empty() {
            0.0
        } else {
            self.doc_lens.iter().sum::<u32>() as f32 / self.doc_lens.len() as f32
        }
    }

    /// The index's vocabulary.
    #[must_use]
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The index's tokenizer — callers that maintain side structures
    /// keyed by token (term filters, caches) must tokenize exactly the
    /// way the index does.
    #[must_use]
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// Postings for a term id (empty slice if unseen).
    #[must_use]
    pub fn postings(&self, term: TermId) -> &[Posting] {
        self.postings
            .get(term as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Document frequency of a term.
    #[must_use]
    pub fn doc_freq(&self, term: TermId) -> usize {
        self.postings(term).len()
    }

    /// Tokenizes raw query text with the index's tokenizer and maps the
    /// tokens to known term ids (OOV tokens drop out).
    #[must_use]
    pub fn query_terms(&self, text: &str) -> Vec<TermId> {
        self.vocab.lookup_all(&self.tokenizer.tokenize(text))
    }

    /// Document-frequency / posting-length statistics of a conjunctive
    /// query, for cost-based planners. Tokenizes with the index's
    /// tokenizer; duplicate tokens collapse to one term.
    #[must_use]
    pub fn query_stats(&self, text: &str) -> QueryTermStats {
        let tokens = self.tokenizer.tokenize(text);
        let mut seen: Vec<String> = tokens;
        seen.sort_unstable();
        seen.dedup();
        let n = self.num_docs();
        let mut stats = QueryTermStats {
            known_terms: 0,
            unknown_terms: 0,
            min_doc_freq: 0,
            total_posting_len: 0,
            estimated_and_matches: if n == 0 { 0.0 } else { n as f64 },
        };
        for token in &seen {
            match self.vocab.get(token) {
                None => stats.unknown_terms += 1,
                Some(term) => {
                    let df = self.doc_freq(term);
                    stats.known_terms += 1;
                    stats.total_posting_len += df;
                    stats.min_doc_freq = if stats.known_terms == 1 {
                        df
                    } else {
                        stats.min_doc_freq.min(df)
                    };
                    if n > 0 {
                        stats.estimated_and_matches *= df as f64 / n as f64;
                    }
                }
            }
        }
        if stats.unknown_terms > 0 || stats.known_terms == 0 || n == 0 {
            stats.estimated_and_matches = 0.0;
        }
        stats
    }

    /// Boolean AND query: ids of documents containing *all* query terms.
    ///
    /// This is the "query keywords to be matched by the textual attributes"
    /// semantics that the paper's Figure 1 shows failing for "café".
    #[must_use]
    pub fn and_query(&self, text: &str) -> Vec<DocId> {
        let mut terms = self.query_terms(text);
        if terms.is_empty() {
            return Vec::new();
        }
        terms.sort_unstable();
        terms.dedup();
        // Intersect starting from the rarest term.
        terms.sort_by_key(|&t| self.doc_freq(t));
        let mut result: Vec<DocId> = self.postings(terms[0]).iter().map(|p| p.doc).collect();
        for &t in &terms[1..] {
            let posts = self.postings(t);
            let mut next = Vec::with_capacity(result.len().min(posts.len()));
            let (mut i, mut j) = (0usize, 0usize);
            while i < result.len() && j < posts.len() {
                match result[i].cmp(&posts[j].doc) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        next.push(result[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            result = next;
            if result.is_empty() {
                break;
            }
        }
        result
    }

    /// Boolean OR query with per-document match counts, useful for weak
    /// keyword ranking (`count` = number of distinct query terms matched).
    #[must_use]
    pub fn or_query(&self, text: &str) -> Vec<(DocId, u32)> {
        let mut terms = self.query_terms(text);
        terms.sort_unstable();
        terms.dedup();
        let mut counts: std::collections::HashMap<DocId, u32> = std::collections::HashMap::new();
        for t in terms {
            for p in self.postings(t) {
                *counts.entry(p.doc).or_insert(0) += 1;
            }
        }
        let mut out: Vec<_> = counts.into_iter().collect();
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        idx.add_document("cozy cafe with great coffee and pastries"); // 0
        idx.add_document("sports bar showing football games with chicken wings"); // 1
        idx.add_document("coffee roastery and espresso bar"); // 2
        idx.add_document("ice cream parlor"); // 3
        idx
    }

    #[test]
    fn and_query_intersects() {
        let idx = sample();
        assert_eq!(idx.and_query("coffee bar"), vec![2]);
        assert_eq!(idx.and_query("coffee"), vec![0, 2]);
        assert!(idx.and_query("coffee football").is_empty());
    }

    #[test]
    fn and_query_unknown_terms_empty() {
        let idx = sample();
        assert!(idx.and_query("sushi").is_empty());
        assert!(idx.and_query("").is_empty());
    }

    #[test]
    fn stemming_applies_to_queries_and_docs() {
        let idx = sample();
        // "games" in doc 1 should match query "game".
        assert_eq!(idx.and_query("game"), vec![1]);
        assert_eq!(idx.and_query("wings"), vec![1]);
    }

    #[test]
    fn or_query_ranks_by_match_count() {
        let idx = sample();
        let r = idx.or_query("coffee bar pastries");
        assert_eq!(r[0].0, 0); // matches coffee + pastries
        assert_eq!(r[0].1, 2);
    }

    #[test]
    fn doc_stats() {
        let idx = sample();
        assert_eq!(idx.num_docs(), 4);
        assert!(idx.doc_len(0) >= 5);
        assert!(idx.avg_doc_len() > 0.0);
        let coffee = idx.vocab().get("coffee").unwrap();
        assert_eq!(idx.doc_freq(coffee), 2);
    }

    #[test]
    fn query_stats_report_df_and_postings() {
        let idx = sample();
        // "coffee" appears in docs 0 and 2; "bar" in docs 1 and 2.
        let s = idx.query_stats("coffee bar");
        assert_eq!(s.known_terms, 2);
        assert_eq!(s.unknown_terms, 0);
        assert_eq!(s.min_doc_freq, 2);
        assert_eq!(s.total_posting_len, 4);
        // Independence estimate: 4 * (2/4) * (2/4) = 1 — and the true
        // AND-result ("coffee bar" → doc 2) is indeed 1 document.
        assert!((s.estimated_and_matches - 1.0).abs() < 1e-9);

        // An unknown token pins the conjunctive estimate to zero.
        let s = idx.query_stats("coffee sushi");
        assert_eq!(s.known_terms, 1);
        assert_eq!(s.unknown_terms, 1);
        assert_eq!(s.estimated_and_matches, 0.0);

        // Duplicates collapse; an empty query has no terms.
        assert_eq!(idx.query_stats("coffee coffee").known_terms, 1);
        let s = idx.query_stats("");
        assert_eq!(s.known_terms, 0);
        assert_eq!(s.estimated_and_matches, 0.0);
    }

    #[test]
    fn remove_document_zeroes_df_and_length() {
        let mut idx = sample();
        let coffee = idx.vocab().get("coffee").unwrap();
        assert_eq!(idx.doc_freq(coffee), 2);
        idx.remove_document(2, "coffee roastery and espresso bar");
        assert_eq!(idx.doc_freq(coffee), 1);
        assert_eq!(idx.and_query("coffee"), vec![0]);
        assert!(idx.and_query("roastery").is_empty());
        assert_eq!(idx.doc_len(2), 0);
        // Ids stay dense: the corpus size is unchanged.
        assert_eq!(idx.num_docs(), 4);
        // Removing twice (or with stale text) is harmless.
        idx.remove_document(2, "coffee roastery and espresso bar");
        assert_eq!(idx.doc_freq(coffee), 1);
    }

    #[test]
    fn update_document_reindexes_in_place_sorted() {
        let mut idx = sample();
        idx.update_document(
            1,
            "sports bar showing football games with chicken wings",
            "quiet coffee corner",
        );
        // Old terms are gone, new terms match at the same id.
        assert!(idx.and_query("football").is_empty());
        assert_eq!(idx.and_query("coffee"), vec![0, 1, 2]);
        // Postings stay sorted by doc id after a mid-corpus insert.
        let coffee = idx.vocab().get("coffee").unwrap();
        let docs: Vec<DocId> = idx.postings(coffee).iter().map(|p| p.doc).collect();
        assert_eq!(docs, vec![0, 1, 2]);
        assert!(idx.doc_len(1) > 0);
        assert_eq!(idx.num_docs(), 4);
    }

    #[test]
    fn tf_counted_per_doc() {
        let mut idx = InvertedIndex::new();
        idx.add_document("pizza pizza pizza");
        let t = idx.vocab().get("pizza").unwrap();
        assert_eq!(idx.postings(t), &[Posting { doc: 0, tf: 3 }]);
    }
}

//! Okapi BM25 scoring over an [`InvertedIndex`].

use serde::{Deserialize, Serialize};

use crate::inverted::{DocId, InvertedIndex};

/// BM25 parameters and precomputed statistics.
///
/// Used by the IR-tree for node-level relevance upper bounds and available
/// as an alternative keyword ranker. Default parameters `k1 = 1.2`,
/// `b = 0.75` are the standard Robertson values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bm25Model {
    index: InvertedIndex,
    /// Term-frequency saturation parameter.
    pub k1: f32,
    /// Length-normalization parameter.
    pub b: f32,
    avg_len: f32,
}

impl Bm25Model {
    /// Wraps an index with default parameters.
    #[must_use]
    pub fn new(index: InvertedIndex) -> Self {
        Self::with_params(index, 1.2, 0.75)
    }

    /// Wraps an index with explicit parameters.
    #[must_use]
    pub fn with_params(index: InvertedIndex, k1: f32, b: f32) -> Self {
        let avg_len = index.avg_doc_len().max(1e-6);
        Self {
            index,
            k1,
            b,
            avg_len,
        }
    }

    /// The wrapped index.
    #[must_use]
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    fn idf(&self, term: u32) -> f32 {
        let n = self.index.num_docs() as f32;
        let df = self.index.doc_freq(term) as f32;
        // BM25+ style floor at 0 to avoid negative idf for very common terms.
        (((n - df + 0.5) / (df + 0.5)) + 1.0).ln().max(0.0)
    }

    /// BM25 score of `doc` for the query text.
    #[must_use]
    pub fn score(&self, query: &str, doc: DocId) -> f32 {
        let mut terms = self.index.query_terms(query);
        terms.sort_unstable();
        terms.dedup();
        let dl = self.index.doc_len(doc) as f32;
        let mut s = 0.0;
        for t in terms {
            let tf = self
                .index
                .postings(t)
                .binary_search_by_key(&doc, |p| p.doc)
                .ok()
                .map(|i| self.index.postings(t)[i].tf as f32)
                .unwrap_or(0.0);
            if tf == 0.0 {
                continue;
            }
            let denom = tf + self.k1 * (1.0 - self.b + self.b * dl / self.avg_len);
            s += self.idf(t) * tf * (self.k1 + 1.0) / denom;
        }
        s
    }

    /// Scores every document containing at least one query term,
    /// descending.
    #[must_use]
    pub fn rank_all(&self, query: &str) -> Vec<(DocId, f32)> {
        let mut terms = self.index.query_terms(query);
        terms.sort_unstable();
        terms.dedup();
        let mut scores: std::collections::HashMap<DocId, f32> = std::collections::HashMap::new();
        for t in terms {
            let idf = self.idf(t);
            for p in self.index.postings(t) {
                let dl = self.index.doc_len(p.doc) as f32;
                let tf = p.tf as f32;
                let denom = tf + self.k1 * (1.0 - self.b + self.b * dl / self.avg_len);
                *scores.entry(p.doc).or_insert(0.0) += idf * tf * (self.k1 + 1.0) / denom;
            }
        }
        let mut out: Vec<_> = scores.into_iter().collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Bm25Model {
        let mut idx = InvertedIndex::new();
        idx.add_document("coffee coffee coffee shop downtown");
        idx.add_document("coffee shop with pastries and more pastries");
        idx.add_document("hardware store with tools");
        Bm25Model::new(idx)
    }

    #[test]
    fn matching_doc_scores_positive() {
        let m = model();
        assert!(m.score("coffee", 0) > 0.0);
        assert_eq!(m.score("coffee", 2), 0.0);
    }

    #[test]
    fn tf_saturates() {
        // Doc 0 has tf=3 for coffee, doc 1 tf=1; doc 0 should score higher
        // but not 3x higher.
        let m = model();
        let s0 = m.score("coffee", 0);
        let s1 = m.score("coffee", 1);
        assert!(s0 > s1);
        assert!(s0 < 3.0 * s1);
    }

    #[test]
    fn rank_all_orders_descending() {
        let m = model();
        let r = m.rank_all("coffee pastries");
        assert_eq!(r[0].0, 1); // matches both terms
        assert!(r.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn unknown_query_empty() {
        let m = model();
        assert!(m.rank_all("sushi").is_empty());
    }
}

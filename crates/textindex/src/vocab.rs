//! String interning: terms to dense ids.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Dense id of an interned term.
pub type TermId = u32;

/// A bidirectional term ↔ id mapping.
///
/// Term ids are dense and allocated in first-seen order, so they can index
/// into `Vec`-based statistics (document frequencies, topic counts, …).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    map: HashMap<String, TermId>,
    terms: Vec<String>,
}

impl Vocabulary {
    /// An empty vocabulary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, returning its id (existing or freshly allocated).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.map.get(term) {
            return id;
        }
        let id = self.terms.len() as TermId;
        self.terms.push(term.to_owned());
        self.map.insert(term.to_owned(), id);
        id
    }

    /// Id of an already-interned term.
    #[must_use]
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.map.get(term).copied()
    }

    /// The term string for an id.
    #[must_use]
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.terms.get(id as usize).map(String::as_str)
    }

    /// Number of distinct terms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the vocabulary is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Interns every token in `tokens`, returning ids in order.
    pub fn intern_all(&mut self, tokens: &[String]) -> Vec<TermId> {
        tokens.iter().map(|t| self.intern(t)).collect()
    }

    /// Maps tokens to ids, dropping out-of-vocabulary tokens (for querying
    /// a frozen model).
    #[must_use]
    pub fn lookup_all(&self, tokens: &[String]) -> Vec<TermId> {
        tokens.iter().filter_map(|t| self.get(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("coffee");
        let b = v.intern("coffee");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense_in_first_seen_order() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern("a"), 0);
        assert_eq!(v.intern("b"), 1);
        assert_eq!(v.intern("a"), 0);
        assert_eq!(v.intern("c"), 2);
        assert_eq!(v.term(1), Some("b"));
        assert_eq!(v.term(3), None);
    }

    #[test]
    fn lookup_drops_oov() {
        let mut v = Vocabulary::new();
        v.intern("bar");
        let ids = v.lookup_all(&["bar".to_owned(), "unknown".to_owned()]);
        assert_eq!(ids, vec![0]);
    }
}

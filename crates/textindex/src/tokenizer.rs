//! Tokenization: lower-casing, punctuation stripping, stopwords, stemming.

use std::collections::HashSet;

/// English stopwords kept small on purpose: enough to stop query scaffolding
/// ("I am looking for a …") from polluting TF-IDF, without eating
/// domain-bearing words.
const STOPWORDS: &[&str] = &[
    "a",
    "an",
    "the",
    "and",
    "or",
    "but",
    "if",
    "then",
    "else",
    "of",
    "to",
    "in",
    "on",
    "at",
    "by",
    "for",
    "with",
    "about",
    "as",
    "is",
    "are",
    "was",
    "were",
    "be",
    "been",
    "being",
    "am",
    "do",
    "does",
    "did",
    "have",
    "has",
    "had",
    "i",
    "you",
    "he",
    "she",
    "it",
    "we",
    "they",
    "me",
    "my",
    "your",
    "their",
    "our",
    "this",
    "that",
    "these",
    "those",
    "there",
    "here",
    "which",
    "who",
    "whom",
    "what",
    "when",
    "where",
    "why",
    "how",
    "not",
    "no",
    "nor",
    "so",
    "too",
    "very",
    "can",
    "could",
    "will",
    "would",
    "shall",
    "should",
    "may",
    "might",
    "must",
    "also",
    "any",
    "some",
    "such",
    "only",
    "own",
    "same",
    "than",
    "into",
    "out",
    "up",
    "down",
    "over",
    "under",
    "again",
    "more",
    "most",
    "other",
    "its",
    "them",
    "his",
    "her",
    "ours",
    "yours",
    "looking",
    "find",
    "want",
    "need",
    "please",
    "recommend",
    "recommendations",
    "know",
    "anywhere",
    "somewhere",
    "place",
    "places",
];

/// A configurable tokenizer.
///
/// The default configuration (stopwords on, stemming on) is what the TF-IDF
/// and LDA baselines use; the concept detector in the `concepts` crate uses
/// a raw configuration (no stopwords, no stemming) because its phrase
/// lexicon needs exact word sequences.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    stopwords: HashSet<&'static str>,
    stem: bool,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tokenizer {
    /// Tokenizer with stopword removal and stemming enabled.
    #[must_use]
    pub fn new() -> Self {
        Self {
            stopwords: STOPWORDS.iter().copied().collect(),
            stem: true,
        }
    }

    /// Tokenizer that only lower-cases and strips punctuation.
    #[must_use]
    pub fn raw() -> Self {
        Self {
            stopwords: HashSet::new(),
            stem: false,
        }
    }

    /// Builder-style toggle for stemming.
    #[must_use]
    pub fn with_stemming(mut self, stem: bool) -> Self {
        self.stem = stem;
        self
    }

    /// Splits `text` into normalized tokens.
    #[must_use]
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut tokens = Vec::new();
        let mut cur = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() || ch == '\'' {
                for lc in ch.to_lowercase() {
                    if lc != '\'' {
                        cur.push(lc);
                    }
                }
            } else if !cur.is_empty() {
                self.push_token(&mut tokens, std::mem::take(&mut cur));
            }
        }
        if !cur.is_empty() {
            self.push_token(&mut tokens, cur);
        }
        tokens
    }

    fn push_token(&self, tokens: &mut Vec<String>, tok: String) {
        if tok.is_empty() || self.stopwords.contains(tok.as_str()) {
            return;
        }
        let tok = if self.stem { stem(&tok) } else { tok };
        if !tok.is_empty() {
            tokens.push(tok);
        }
    }
}

/// A light suffix-stripping stemmer (a small subset of Porter's rules).
///
/// It is deliberately conservative: the goal is to conflate obvious
/// inflections (plurals, -ing/-ed forms) the way off-the-shelf TF-IDF
/// pipelines do, not to be linguistically complete.
#[must_use]
pub fn stem(word: &str) -> String {
    let w = word;
    let n = w.len();
    // Don't touch very short words; stemming them mostly destroys meaning.
    if n <= 3 {
        return w.to_owned();
    }
    // Order matters: longest suffixes first.
    if let Some(base) = w.strip_suffix("ations") {
        return format!("{base}ate");
    }
    if let Some(base) = w.strip_suffix("nesses") {
        return base.to_owned();
    }
    if let Some(base) = w.strip_suffix("fulness") {
        return base.to_owned();
    }
    if let Some(base) = w.strip_suffix("ness") {
        return base.to_owned();
    }
    if let Some(base) = w.strip_suffix("ingly") {
        if base.len() >= 3 {
            return base.to_owned();
        }
    }
    if let Some(base) = w.strip_suffix("edly") {
        if base.len() >= 3 {
            return base.to_owned();
        }
    }
    if let Some(base) = w.strip_suffix("ing") {
        if base.len() >= 3 {
            return undouble(base);
        }
    }
    if let Some(base) = w.strip_suffix("ied") {
        return format!("{base}y");
    }
    if let Some(base) = w.strip_suffix("ies") {
        return format!("{base}y");
    }
    if let Some(base) = w.strip_suffix("ed") {
        if base.len() >= 3 {
            return undouble(base);
        }
    }
    if let Some(base) = w.strip_suffix("sses") {
        return format!("{base}ss");
    }
    if let Some(base) = w.strip_suffix("es") {
        // "dishes" -> "dish", "boxes" -> "box"; but "es" after a vowel is
        // usually part of the word ("lattes" -> "latte" handled by -s rule).
        if base.ends_with("sh")
            || base.ends_with("ch")
            || base.ends_with('x')
            || base.ends_with('z')
        {
            return base.to_owned();
        }
    }
    if w.ends_with("ss") || w.ends_with("us") || w.ends_with("is") {
        return w.to_owned();
    }
    if let Some(base) = w.strip_suffix('s') {
        if base.len() >= 3 {
            return base.to_owned();
        }
    }
    w.to_owned()
}

/// Removes a doubled final consonant left behind by -ing/-ed stripping
/// ("stopp" → "stop"), except for ll/ss/zz which are legitimate.
fn undouble(base: &str) -> String {
    let bytes = base.as_bytes();
    let n = bytes.len();
    if n >= 2 && bytes[n - 1] == bytes[n - 2] {
        let c = bytes[n - 1] as char;
        if c.is_ascii_alphabetic() && !matches!(c, 'l' | 's' | 'z') && !is_vowel(c) {
            return base[..n - 1].to_owned();
        }
    }
    base.to_owned()
}

fn is_vowel(c: char) -> bool {
    matches!(c, 'a' | 'e' | 'i' | 'o' | 'u')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_strips_punct() {
        let t = Tokenizer::raw();
        assert_eq!(
            t.tokenize("Hello, World! It's GREAT."),
            vec!["hello", "world", "its", "great"]
        );
    }

    #[test]
    fn tokenize_removes_stopwords() {
        let t = Tokenizer::new();
        let toks = t.tokenize("I am looking for a bar to watch football");
        assert!(!toks.contains(&"i".to_owned()));
        assert!(!toks.contains(&"looking".to_owned()));
        assert!(toks.contains(&"bar".to_owned()));
        assert!(toks.contains(&"football".to_owned()));
    }

    #[test]
    fn tokenize_keeps_numbers() {
        let t = Tokenizer::raw();
        assert_eq!(t.tokenize("open 24 hours"), vec!["open", "24", "hours"]);
    }

    #[test]
    fn stem_plurals() {
        assert_eq!(stem("wings"), "wing");
        assert_eq!(stem("dishes"), "dish");
        assert_eq!(stem("berries"), "berry");
        assert_eq!(stem("glass"), "glass");
        assert_eq!(stem("focus"), "focus");
    }

    #[test]
    fn stem_ing_ed() {
        assert_eq!(stem("watching"), "watch");
        assert_eq!(stem("stopped"), "stop");
        assert_eq!(stem("grilled"), "grill");
        assert_eq!(stem("tried"), "try");
    }

    #[test]
    fn stem_leaves_short_words() {
        assert_eq!(stem("bus"), "bus");
        assert_eq!(stem("as"), "as");
        assert_eq!(stem("tea"), "tea");
    }

    #[test]
    fn stemming_conflates_query_and_doc_forms() {
        let t = Tokenizer::new();
        let q = t.tokenize("watching games");
        let d = t.tokenize("watch the game");
        assert_eq!(q, d);
    }

    #[test]
    fn apostrophes_are_dropped_inside_words() {
        let t = Tokenizer::raw();
        assert_eq!(t.tokenize("Mike's"), vec!["mikes"]);
    }

    #[test]
    fn empty_and_whitespace() {
        let t = Tokenizer::new();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("   \t\n").is_empty());
        assert!(t.tokenize("!!! ... ---").is_empty());
    }
}

//! # textindex — classic text retrieval substrate
//!
//! Everything the *non-semantic* side of the reproduction needs:
//!
//! - [`Tokenizer`] — lower-casing, punctuation stripping, stopword removal,
//!   and a light suffix-stripping stemmer,
//! - [`Vocabulary`] — string interning to dense term ids,
//! - [`InvertedIndex`] — term → postings with boolean AND queries,
//! - [`SparseVector`] — sorted sparse vectors with dot/cosine,
//! - [`TfIdfModel`] — the TF-IDF baseline ranker of the paper's Table 2,
//! - [`Bm25Model`] — BM25, used by the IR-tree's node relevance scores.
//!
//! The paper's observation that "the TF-IDF measure … ignores the broader
//! semantics of the keywords" is exactly what this crate implements: a
//! purely surface-form view of text.

#![warn(missing_docs)]

pub mod bm25;
pub mod inverted;
pub mod sparse;
pub mod tfidf;
pub mod tokenizer;
pub mod vocab;

pub use bm25::Bm25Model;
pub use inverted::{DocId, InvertedIndex, QueryTermStats};
pub use sparse::SparseVector;
pub use tfidf::TfIdfModel;
pub use tokenizer::Tokenizer;
pub use vocab::{TermId, Vocabulary};

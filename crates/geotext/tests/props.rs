//! Property-based tests for the geo-textual data model.

use geotext::{BoundingBox, GeoPoint};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = GeoPoint> {
    // Stay off the exact poles so offset_km stays well-conditioned.
    (-80.0f64..80.0, -179.0f64..179.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon).unwrap())
}

fn arb_bbox() -> impl Strategy<Value = BoundingBox> {
    (arb_point(), 0.1f64..40.0, 0.1f64..40.0)
        .prop_map(|(c, w, h)| BoundingBox::from_center_km(c, w, h))
}

proptest! {
    #[test]
    fn haversine_is_symmetric_and_nonnegative(a in arb_point(), b in arb_point()) {
        let d1 = a.haversine_km(&b);
        let d2 = b.haversine_km(&a);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn haversine_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        let ab = a.haversine_km(&b);
        let bc = b.haversine_km(&c);
        let ac = a.haversine_km(&c);
        prop_assert!(ac <= ab + bc + 1e-6, "ac={ac} ab={ab} bc={bc}");
    }

    #[test]
    fn bbox_contains_its_center(b in arb_bbox()) {
        prop_assert!(b.contains(&b.center()));
    }

    #[test]
    fn bbox_union_contains_both(a in arb_bbox(), b in arb_bbox()) {
        let u = a.union(&b);
        prop_assert!(u.contains_box(&a));
        prop_assert!(u.contains_box(&b));
    }

    #[test]
    fn bbox_intersects_is_symmetric(a in arb_bbox(), b in arb_bbox()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn containment_implies_intersection(a in arb_bbox(), b in arb_bbox()) {
        if a.contains_box(&b) {
            prop_assert!(a.intersects(&b));
        }
    }

    #[test]
    fn min_distance_zero_iff_inside(b in arb_bbox(), p in arb_point()) {
        let d = b.min_distance_km(&p);
        if b.contains(&p) {
            prop_assert_eq!(d, 0.0);
        } else {
            prop_assert!(d > 0.0);
        }
    }

    #[test]
    fn enlargement_is_nonnegative(a in arb_bbox(), b in arb_bbox()) {
        prop_assert!(a.enlargement_deg2(&b) >= -1e-12);
    }

    #[test]
    fn offset_roundtrip(
        // Mid-latitudes only: the small-displacement approximation degrades
        // towards the poles, and all of the paper's cities are below 45°N.
        lat in -60.0f64..60.0, lon in -179.0f64..179.0,
        dx in -20.0f64..20.0, dy in -20.0f64..20.0
    ) {
        let p = GeoPoint::new(lat, lon).unwrap();
        // Moving out and back returns (approximately) to the start.
        let q = p.offset_km(dy, dx).offset_km(-dy, -dx);
        prop_assert!(p.haversine_km(&q) < 0.2, "drift {}", p.haversine_km(&q));
    }

    #[test]
    fn equirectangular_close_to_haversine_city_scale(
        p in arb_point(), dx in -5.0f64..5.0, dy in -5.0f64..5.0
    ) {
        let q = p.offset_km(dy, dx);
        let h = p.haversine_km(&q);
        let e = p.equirectangular_km(&q);
        prop_assert!((h - e).abs() <= 0.01 + h * 0.01);
    }
}

//! In-memory datasets of geo-textual objects.

use serde::{Deserialize, Serialize};

use crate::bbox::BoundingBox;
use crate::error::GeoTextError;
use crate::object::{GeoTextObject, ObjectId};

/// An in-memory dataset `O = {o_1, ..., o_n}` with dense `ObjectId`s.
///
/// Objects are stored in id order (`objects[i].id == ObjectId(i)`), so id
/// lookup is O(1) slice indexing. Datasets are the unit handed to index
/// builders, the data-preparation pipeline, and the evaluation harness.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. the city name).
    pub name: String,
    objects: Vec<GeoTextObject>,
}

impl Dataset {
    /// Creates an empty dataset.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            objects: Vec::new(),
        }
    }

    /// Creates a dataset from objects, validating that ids are dense and
    /// in order.
    pub fn from_objects(
        name: impl Into<String>,
        objects: Vec<GeoTextObject>,
    ) -> Result<Self, GeoTextError> {
        for (i, o) in objects.iter().enumerate() {
            if o.id.index() != i {
                return Err(GeoTextError::NonDenseIds {
                    expected: i as u32,
                    found: o.id.0,
                });
            }
        }
        Ok(Self {
            name: name.into(),
            objects,
        })
    }

    /// Appends an object, assigning it the next dense id. Returns the id.
    pub fn push(&mut self, build: impl FnOnce(ObjectId) -> GeoTextObject) -> ObjectId {
        let id = ObjectId(self.objects.len() as u32);
        let obj = build(id);
        debug_assert_eq!(obj.id, id);
        self.objects.push(obj);
        id
    }

    /// Number of objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// O(1) id lookup.
    #[must_use]
    pub fn get(&self, id: ObjectId) -> Option<&GeoTextObject> {
        self.objects.get(id.index())
    }

    /// Mutable id lookup (used by the data-preparation pipeline to attach
    /// completed addresses and tip summaries).
    pub fn get_mut(&mut self, id: ObjectId) -> Option<&mut GeoTextObject> {
        self.objects.get_mut(id.index())
    }

    /// All objects in id order.
    #[must_use]
    pub fn objects(&self) -> &[GeoTextObject] {
        &self.objects
    }

    /// Iterates ids and objects.
    pub fn iter(&self) -> impl Iterator<Item = &GeoTextObject> {
        self.objects.iter()
    }

    /// Linear scan returning ids of objects inside `range` — the brute
    /// force oracle that the spatial indexes are property-tested against.
    #[must_use]
    pub fn range_scan(&self, range: &BoundingBox) -> Vec<ObjectId> {
        self.objects
            .iter()
            .filter(|o| range.contains(&o.location))
            .map(|o| o.id)
            .collect()
    }

    /// Bounding box of all object locations (None if empty).
    #[must_use]
    pub fn bounds(&self) -> Option<BoundingBox> {
        let mut it = self.objects.iter();
        let first = it.next()?;
        let mut b = BoundingBox::from_point(first.location);
        for o in it {
            b.expand_to_point(o.location);
        }
        Some(b)
    }

    /// Text statistics used to calibrate the synthetic generator against
    /// the paper's reported dataset statistics.
    #[must_use]
    pub fn stats(&self) -> DatasetStats {
        let mut total_tips = 0usize;
        let mut total_tip_tokens = 0usize;
        let mut with_tips = 0usize;
        for o in &self.objects {
            if let Some(tips) = o.attrs.get("tips").and_then(|v| v.as_list()) {
                if !tips.is_empty() {
                    with_tips += 1;
                }
                total_tips += tips.len();
                total_tip_tokens += tips
                    .iter()
                    .map(|t| t.split_whitespace().count())
                    .sum::<usize>();
            }
        }
        let n = self.objects.len().max(1);
        DatasetStats {
            num_objects: self.objects.len(),
            objects_with_tips: with_tips,
            avg_tips_per_object: total_tips as f64 / n as f64,
            avg_tip_tokens_per_object: total_tip_tokens as f64 / n as f64,
        }
    }
}

impl std::ops::Index<ObjectId> for Dataset {
    type Output = GeoTextObject;
    fn index(&self, id: ObjectId) -> &GeoTextObject {
        &self.objects[id.index()]
    }
}

/// Summary statistics of a dataset's textual content.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Total number of objects.
    pub num_objects: usize,
    /// Objects that have at least one tip.
    pub objects_with_tips: usize,
    /// Average number of tips per object (paper: ~11).
    pub avg_tips_per_object: f64,
    /// Average total tip tokens per object (paper: ~147).
    pub avg_tip_tokens_per_object: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::GeoPoint;

    fn obj(id: u32, lat: f64, lon: f64) -> GeoTextObject {
        GeoTextObject::builder(ObjectId(id), GeoPoint::new(lat, lon).unwrap())
            .attr("name", format!("poi-{id}"))
            .attr(
                "tips",
                vec!["nice place to eat".to_owned(), "good".to_owned()],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn push_assigns_dense_ids() {
        let mut d = Dataset::new("t");
        let a = d.push(|id| obj(id.0, 1.0, 1.0));
        let b = d.push(|id| obj(id.0, 2.0, 2.0));
        assert_eq!(a, ObjectId(0));
        assert_eq!(b, ObjectId(1));
        assert_eq!(d.len(), 2);
        assert_eq!(d[b].name(), "poi-1");
    }

    #[test]
    fn from_objects_rejects_non_dense() {
        let objs = vec![obj(0, 1.0, 1.0), obj(2, 2.0, 2.0)];
        assert!(Dataset::from_objects("t", objs).is_err());
    }

    #[test]
    fn range_scan_filters() {
        let mut d = Dataset::new("t");
        d.push(|id| obj(id.0, 1.0, 1.0));
        d.push(|id| obj(id.0, 5.0, 5.0));
        d.push(|id| obj(id.0, 1.5, 1.5));
        let r = BoundingBox::new(0.0, 0.0, 2.0, 2.0).unwrap();
        let hits = d.range_scan(&r);
        assert_eq!(hits, vec![ObjectId(0), ObjectId(2)]);
    }

    #[test]
    fn bounds_cover_all() {
        let mut d = Dataset::new("t");
        assert!(d.bounds().is_none());
        d.push(|id| obj(id.0, 1.0, -3.0));
        d.push(|id| obj(id.0, -2.0, 4.0));
        let b = d.bounds().unwrap();
        assert_eq!(b, BoundingBox::new(-2.0, -3.0, 1.0, 4.0).unwrap());
    }

    #[test]
    fn stats_count_tips() {
        let mut d = Dataset::new("t");
        d.push(|id| obj(id.0, 1.0, 1.0));
        d.push(|id| obj(id.0, 2.0, 2.0));
        let s = d.stats();
        assert_eq!(s.num_objects, 2);
        assert_eq!(s.objects_with_tips, 2);
        assert!((s.avg_tips_per_object - 2.0).abs() < 1e-12);
        assert!((s.avg_tip_tokens_per_object - 5.0).abs() < 1e-12);
    }
}

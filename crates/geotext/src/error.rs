//! Error types for the geo-textual data model.

use std::fmt;

/// Errors produced by the `geotext` crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GeoTextError {
    /// A latitude/longitude pair was out of range or non-finite.
    InvalidCoordinate {
        /// Offending latitude.
        lat: f64,
        /// Offending longitude.
        lon: f64,
    },
    /// A bounding box had min > max on some axis.
    InvalidBoundingBox {
        /// Southern edge.
        min_lat: f64,
        /// Western edge.
        min_lon: f64,
        /// Northern edge.
        max_lat: f64,
        /// Eastern edge.
        max_lon: f64,
    },
    /// An object was built without any textual attribute.
    NoTextualAttribute {
        /// Offending object id.
        id: u32,
    },
    /// Dataset construction saw an out-of-order or non-dense id.
    NonDenseIds {
        /// The id expected at this position.
        expected: u32,
        /// The id actually found.
        found: u32,
    },
}

impl fmt::Display for GeoTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoTextError::InvalidCoordinate { lat, lon } => {
                write!(f, "invalid coordinate: lat={lat}, lon={lon}")
            }
            GeoTextError::InvalidBoundingBox {
                min_lat,
                min_lon,
                max_lat,
                max_lon,
            } => write!(
                f,
                "invalid bounding box: ({min_lat},{min_lon})..({max_lat},{max_lon})"
            ),
            GeoTextError::NoTextualAttribute { id } => {
                write!(f, "object {id} has no textual attribute")
            }
            GeoTextError::NonDenseIds { expected, found } => {
                write!(
                    f,
                    "non-dense object ids: expected {expected}, found {found}"
                )
            }
        }
    }
}

impl std::error::Error for GeoTextError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GeoTextError::InvalidCoordinate {
            lat: 99.0,
            lon: 0.0,
        };
        assert!(e.to_string().contains("99"));
        let e = GeoTextError::NonDenseIds {
            expected: 1,
            found: 3,
        };
        assert!(e.to_string().contains("expected 1"));
    }
}

//! WGS84 geographic points and distance computations.

use serde::{Deserialize, Serialize};

use crate::error::GeoTextError;
use crate::EARTH_RADIUS_KM;

/// A geographic location: latitude/longitude in decimal degrees (WGS84).
///
/// This is the paper's location attribute `o.l` ("a pair of
/// geo-coordinates"). Latitude is constrained to `[-90, 90]` and longitude
/// to `[-180, 180]`; use [`GeoPoint::new`] for checked construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in decimal degrees, positive north.
    pub lat: f64,
    /// Longitude in decimal degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point, validating coordinate ranges and rejecting
    /// non-finite values.
    pub fn new(lat: f64, lon: f64) -> Result<Self, GeoTextError> {
        if !lat.is_finite() || !lon.is_finite() {
            return Err(GeoTextError::InvalidCoordinate { lat, lon });
        }
        if !(-90.0..=90.0).contains(&lat) || !(-180.0..=180.0).contains(&lon) {
            return Err(GeoTextError::InvalidCoordinate { lat, lon });
        }
        Ok(Self { lat, lon })
    }

    /// Creates a point without range validation.
    ///
    /// Intended for trusted internal call sites (e.g. index node centres
    /// derived from already-validated data). Debug builds still assert.
    #[must_use]
    pub fn new_unchecked(lat: f64, lon: f64) -> Self {
        debug_assert!(lat.is_finite() && lon.is_finite());
        Self { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    ///
    /// Accurate to ~0.5% everywhere on Earth, which is far below the
    /// granularity of the paper's 5 km × 5 km query ranges.
    #[must_use]
    pub fn haversine_km(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// Fast approximate distance in kilometres using the equirectangular
    /// projection. Suitable for short distances (city scale) where it is
    /// within ~0.1% of haversine, and ~2.5x cheaper (no `asin`).
    #[must_use]
    pub fn equirectangular_km(&self, other: &GeoPoint) -> f64 {
        let mean_lat = ((self.lat + other.lat) / 2.0).to_radians();
        let dx = (other.lon - self.lon).to_radians() * mean_lat.cos();
        let dy = (other.lat - self.lat).to_radians();
        EARTH_RADIUS_KM * (dx * dx + dy * dy).sqrt()
    }

    /// Returns the point displaced by `dlat_km` kilometres north and
    /// `dlon_km` kilometres east (small-displacement approximation).
    ///
    /// Used by the synthetic data generator to scatter POIs around city
    /// centres and to build query ranges of a given physical size.
    #[must_use]
    pub fn offset_km(&self, dlat_km: f64, dlon_km: f64) -> GeoPoint {
        let dlat = (dlat_km / EARTH_RADIUS_KM).to_degrees();
        let lat_rad = self.lat.to_radians();
        // Guard against cos(lat) -> 0 near the poles; city data never gets
        // there, but the math should stay finite.
        let cos_lat = lat_rad.cos().max(1e-9);
        let dlon = (dlon_km / (EARTH_RADIUS_KM * cos_lat)).to_degrees();
        GeoPoint::new_unchecked(
            (self.lat + dlat).clamp(-90.0, 90.0),
            wrap_lon(self.lon + dlon),
        )
    }

    /// Initial bearing from `self` to `other` in degrees clockwise from
    /// north, in `[0, 360)`.
    #[must_use]
    pub fn bearing_deg(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlon = lon2 - lon1;
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        let deg = y.atan2(x).to_degrees();
        (deg + 360.0) % 360.0
    }
}

/// Wraps a longitude into `[-180, 180]`.
fn wrap_lon(lon: f64) -> f64 {
    let mut l = (lon + 180.0) % 360.0;
    if l < 0.0 {
        l += 360.0;
    }
    l - 180.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert!(GeoPoint::new(91.0, 0.0).is_err());
        assert!(GeoPoint::new(-91.0, 0.0).is_err());
        assert!(GeoPoint::new(0.0, 181.0).is_err());
        assert!(GeoPoint::new(0.0, -181.0).is_err());
        assert!(GeoPoint::new(f64::NAN, 0.0).is_err());
        assert!(GeoPoint::new(0.0, f64::INFINITY).is_err());
        assert!(GeoPoint::new(90.0, 180.0).is_ok());
    }

    #[test]
    fn haversine_zero_for_identical_points() {
        let a = p(36.1627, -86.7816); // Nashville
        assert_eq!(a.haversine_km(&a), 0.0);
    }

    #[test]
    fn haversine_known_distance_nashville_to_philadelphia() {
        // Nashville TN to Philadelphia PA is ~1,090 km great circle.
        let nash = p(36.1627, -86.7816);
        let phil = p(39.9526, -75.1652);
        let d = nash.haversine_km(&phil);
        assert!((d - 1090.0).abs() < 20.0, "got {d}");
    }

    #[test]
    fn haversine_symmetry() {
        let a = p(39.7684, -86.1581);
        let b = p(38.6270, -90.1994);
        assert!((a.haversine_km(&b) - b.haversine_km(&a)).abs() < 1e-9);
    }

    #[test]
    fn equirectangular_close_to_haversine_at_city_scale() {
        let a = p(39.7684, -86.1581);
        let b = a.offset_km(3.0, -4.0);
        let h = a.haversine_km(&b);
        let e = a.equirectangular_km(&b);
        assert!((h - e).abs() / h < 0.005, "h={h} e={e}");
    }

    #[test]
    fn offset_km_roundtrip_distance() {
        let a = p(34.4208, -119.6982); // Santa Barbara
        let b = a.offset_km(0.0, 5.0);
        let d = a.haversine_km(&b);
        assert!((d - 5.0).abs() < 0.02, "got {d}");
        let c = a.offset_km(5.0, 0.0);
        let d2 = a.haversine_km(&c);
        assert!((d2 - 5.0).abs() < 0.02, "got {d2}");
    }

    #[test]
    fn bearing_cardinal_directions() {
        let a = p(40.0, -86.0);
        let north = a.offset_km(1.0, 0.0);
        let east = a.offset_km(0.0, 1.0);
        assert!(a.bearing_deg(&north).abs() < 0.5);
        assert!((a.bearing_deg(&east) - 90.0).abs() < 0.5);
    }

    #[test]
    fn wrap_lon_wraps() {
        assert!((wrap_lon(190.0) - -170.0).abs() < 1e-9);
        assert!((wrap_lon(-190.0) - 170.0).abs() < 1e-9);
        assert!((wrap_lon(0.0) - 0.0).abs() < 1e-9);
    }
}

//! Axis-aligned bounding boxes over latitude/longitude.
//!
//! A [`BoundingBox`] is the paper's query range `q.r` ("a region, e.g. a
//! rectangle"): the experiments use 5 km × 5 km boxes centred on a random
//! point in each city. Boxes are also the building block of the R-tree in
//! the `spatial` crate.

use serde::{Deserialize, Serialize};

use crate::error::GeoTextError;
use crate::point::GeoPoint;

/// An axis-aligned rectangle in (lat, lon) space.
///
/// Degenerate (point) boxes are allowed. Boxes never wrap the antimeridian;
/// the synthetic world and the paper's US cities never need that.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Southern edge (minimum latitude).
    pub min_lat: f64,
    /// Western edge (minimum longitude).
    pub min_lon: f64,
    /// Northern edge (maximum latitude).
    pub max_lat: f64,
    /// Eastern edge (maximum longitude).
    pub max_lon: f64,
}

impl BoundingBox {
    /// Creates a box, checking that min ≤ max on both axes and that all
    /// coordinates are valid.
    pub fn new(
        min_lat: f64,
        min_lon: f64,
        max_lat: f64,
        max_lon: f64,
    ) -> Result<Self, GeoTextError> {
        GeoPoint::new(min_lat, min_lon)?;
        GeoPoint::new(max_lat, max_lon)?;
        if min_lat > max_lat || min_lon > max_lon {
            return Err(GeoTextError::InvalidBoundingBox {
                min_lat,
                min_lon,
                max_lat,
                max_lon,
            });
        }
        Ok(Self {
            min_lat,
            min_lon,
            max_lat,
            max_lon,
        })
    }

    /// A degenerate box covering exactly one point.
    #[must_use]
    pub fn from_point(p: GeoPoint) -> Self {
        Self {
            min_lat: p.lat,
            min_lon: p.lon,
            max_lat: p.lat,
            max_lon: p.lon,
        }
    }

    /// The box of the given physical size (in kilometres) centred at
    /// `center`. This is how the paper forms query ranges: "a 5 km × 5 km
    /// region centered at the point".
    #[must_use]
    pub fn from_center_km(center: GeoPoint, width_km: f64, height_km: f64) -> Self {
        let half_w = width_km / 2.0;
        let half_h = height_km / 2.0;
        let sw = center.offset_km(-half_h, -half_w);
        let ne = center.offset_km(half_h, half_w);
        Self {
            min_lat: sw.lat,
            min_lon: sw.lon,
            max_lat: ne.lat,
            max_lon: ne.lon,
        }
    }

    /// Smallest box containing every point in `points`. Returns `None` for
    /// an empty slice.
    #[must_use]
    pub fn enclosing(points: &[GeoPoint]) -> Option<Self> {
        let first = points.first()?;
        let mut b = Self::from_point(*first);
        for p in &points[1..] {
            b.expand_to_point(*p);
        }
        Some(b)
    }

    /// Whether `p` lies inside the box (edges inclusive).
    #[must_use]
    pub fn contains(&self, p: &GeoPoint) -> bool {
        p.lat >= self.min_lat
            && p.lat <= self.max_lat
            && p.lon >= self.min_lon
            && p.lon <= self.max_lon
    }

    /// Whether `other` lies entirely inside this box.
    #[must_use]
    pub fn contains_box(&self, other: &BoundingBox) -> bool {
        other.min_lat >= self.min_lat
            && other.max_lat <= self.max_lat
            && other.min_lon >= self.min_lon
            && other.max_lon <= self.max_lon
    }

    /// Whether the two boxes overlap (edge contact counts).
    #[must_use]
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min_lat <= other.max_lat
            && self.max_lat >= other.min_lat
            && self.min_lon <= other.max_lon
            && self.max_lon >= other.min_lon
    }

    /// Grows the box in place to include `p`.
    pub fn expand_to_point(&mut self, p: GeoPoint) {
        self.min_lat = self.min_lat.min(p.lat);
        self.max_lat = self.max_lat.max(p.lat);
        self.min_lon = self.min_lon.min(p.lon);
        self.max_lon = self.max_lon.max(p.lon);
    }

    /// Grows the box in place to include `other`.
    pub fn expand_to_box(&mut self, other: &BoundingBox) {
        self.min_lat = self.min_lat.min(other.min_lat);
        self.max_lat = self.max_lat.max(other.max_lat);
        self.min_lon = self.min_lon.min(other.min_lon);
        self.max_lon = self.max_lon.max(other.max_lon);
    }

    /// The union of two boxes.
    #[must_use]
    pub fn union(&self, other: &BoundingBox) -> BoundingBox {
        let mut b = *self;
        b.expand_to_box(other);
        b
    }

    /// Geometric centre of the box.
    #[must_use]
    pub fn center(&self) -> GeoPoint {
        GeoPoint::new_unchecked(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )
    }

    /// Area in squared degrees — a *relative* measure used by R-tree split
    /// and choose-subtree heuristics, where only comparisons matter.
    #[must_use]
    pub fn area_deg2(&self) -> f64 {
        (self.max_lat - self.min_lat) * (self.max_lon - self.min_lon)
    }

    /// Half-perimeter in degrees (the R*-tree "margin" measure).
    #[must_use]
    pub fn margin_deg(&self) -> f64 {
        (self.max_lat - self.min_lat) + (self.max_lon - self.min_lon)
    }

    /// Area increase (in squared degrees) needed to include `other`.
    #[must_use]
    pub fn enlargement_deg2(&self, other: &BoundingBox) -> f64 {
        self.union(other).area_deg2() - self.area_deg2()
    }

    /// Approximate width and height of the box in kilometres.
    #[must_use]
    pub fn extent_km(&self) -> (f64, f64) {
        let sw = GeoPoint::new_unchecked(self.min_lat, self.min_lon);
        let se = GeoPoint::new_unchecked(self.min_lat, self.max_lon);
        let nw = GeoPoint::new_unchecked(self.max_lat, self.min_lon);
        (sw.haversine_km(&se), sw.haversine_km(&nw))
    }

    /// Lower bound on the distance from `p` to any point in the box, in
    /// kilometres (0 if `p` is inside). Used for best-first kNN search.
    #[must_use]
    pub fn min_distance_km(&self, p: &GeoPoint) -> f64 {
        let clamped = GeoPoint::new_unchecked(
            p.lat.clamp(self.min_lat, self.max_lat),
            p.lon.clamp(self.min_lon, self.max_lon),
        );
        p.haversine_km(&clamped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn new_rejects_inverted() {
        assert!(BoundingBox::new(1.0, 0.0, 0.0, 1.0).is_err());
        assert!(BoundingBox::new(0.0, 1.0, 1.0, 0.0).is_err());
        assert!(BoundingBox::new(0.0, 0.0, 0.0, 0.0).is_ok());
    }

    #[test]
    fn from_center_km_has_requested_extent() {
        let c = p(39.9526, -75.1652); // Philadelphia
        let b = BoundingBox::from_center_km(c, 5.0, 5.0);
        let (w, h) = b.extent_km();
        assert!((w - 5.0).abs() < 0.05, "w={w}");
        assert!((h - 5.0).abs() < 0.05, "h={h}");
        assert!(b.contains(&c));
    }

    #[test]
    fn contains_edges_inclusive() {
        let b = BoundingBox::new(0.0, 0.0, 1.0, 1.0).unwrap();
        assert!(b.contains(&p(0.0, 0.0)));
        assert!(b.contains(&p(1.0, 1.0)));
        assert!(b.contains(&p(0.5, 0.5)));
        assert!(!b.contains(&p(1.0001, 0.5)));
        assert!(!b.contains(&p(0.5, -0.0001)));
    }

    #[test]
    fn intersects_cases() {
        let a = BoundingBox::new(0.0, 0.0, 2.0, 2.0).unwrap();
        let b = BoundingBox::new(1.0, 1.0, 3.0, 3.0).unwrap();
        let c = BoundingBox::new(2.0, 2.0, 3.0, 3.0).unwrap(); // corner touch
        let d = BoundingBox::new(5.0, 5.0, 6.0, 6.0).unwrap();
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(a.intersects(&c));
        assert!(!a.intersects(&d));
    }

    #[test]
    fn contains_box_cases() {
        let outer = BoundingBox::new(0.0, 0.0, 10.0, 10.0).unwrap();
        let inner = BoundingBox::new(1.0, 1.0, 2.0, 2.0).unwrap();
        let overlapping = BoundingBox::new(9.0, 9.0, 11.0, 11.0).unwrap();
        assert!(outer.contains_box(&inner));
        assert!(outer.contains_box(&outer));
        assert!(!outer.contains_box(&overlapping));
        assert!(!inner.contains_box(&outer));
    }

    #[test]
    fn union_and_enlargement() {
        let a = BoundingBox::new(0.0, 0.0, 1.0, 1.0).unwrap();
        let b = BoundingBox::new(2.0, 2.0, 3.0, 3.0).unwrap();
        let u = a.union(&b);
        assert_eq!(u, BoundingBox::new(0.0, 0.0, 3.0, 3.0).unwrap());
        assert!((a.enlargement_deg2(&b) - (9.0 - 1.0)).abs() < 1e-12);
        assert_eq!(a.enlargement_deg2(&a), 0.0);
    }

    #[test]
    fn enclosing_points() {
        let pts = [p(1.0, 2.0), p(-1.0, 5.0), p(0.0, 0.0)];
        let b = BoundingBox::enclosing(&pts).unwrap();
        assert_eq!(b, BoundingBox::new(-1.0, 0.0, 1.0, 5.0).unwrap());
        assert!(BoundingBox::enclosing(&[]).is_none());
    }

    #[test]
    fn min_distance_zero_inside_positive_outside() {
        let b = BoundingBox::from_center_km(p(38.627, -90.1994), 5.0, 5.0);
        assert_eq!(b.min_distance_km(&b.center()), 0.0);
        let far = b.center().offset_km(10.0, 0.0);
        let d = b.min_distance_km(&far);
        assert!((d - 7.5).abs() < 0.1, "got {d}"); // 10 km - half-height 2.5 km
    }

    #[test]
    fn margin_and_area() {
        let b = BoundingBox::new(0.0, 0.0, 2.0, 3.0).unwrap();
        assert!((b.area_deg2() - 6.0).abs() < 1e-12);
        assert!((b.margin_deg() - 5.0).abs() < 1e-12);
    }
}

//! Geo-textual objects (POIs).

use serde::{Deserialize, Serialize};

use crate::attr::{AttributeSet, AttributeValue};
use crate::error::GeoTextError;
use crate::point::GeoPoint;

/// A stable object identifier, unique within a [`crate::Dataset`].
///
/// Stored as a `u32` index (the paper's datasets top out at ~81,500 POIs,
/// and keeping ids small keeps index postings compact — see the perf-guide
/// note on smaller integers).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The id as a usize, for slice indexing.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A geo-textual object `o = (o.l, o.A)`: a location plus an attribute set
/// with at least one textual attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeoTextObject {
    /// Identifier within the owning dataset.
    pub id: ObjectId,
    /// The location attribute `o.l`.
    pub location: GeoPoint,
    /// The non-spatial attributes `o.A`.
    pub attrs: AttributeSet,
}

impl GeoTextObject {
    /// Starts building an object at `location`.
    #[must_use]
    pub fn builder(id: ObjectId, location: GeoPoint) -> ObjectBuilder {
        ObjectBuilder {
            id,
            location,
            attrs: AttributeSet::new(),
        }
    }

    /// The object's display name (the `name` attribute), or its id string.
    #[must_use]
    pub fn name(&self) -> &str {
        self.attrs.get_text("name").unwrap_or("<unnamed>")
    }

    /// Full textual document for indexing/embedding: every attribute
    /// flattened, one per line.
    #[must_use]
    pub fn to_document(&self) -> String {
        self.attrs.to_document()
    }

    /// JSON view of the raw attributes (including coordinates), as fed to
    /// the LLM refinement prompt.
    #[must_use]
    pub fn to_json(&self) -> serde_json::Value {
        let mut j = self.attrs.to_json();
        if let serde_json::Value::Object(map) = &mut j {
            map.insert("latitude".to_owned(), serde_json::json!(self.location.lat));
            map.insert("longitude".to_owned(), serde_json::json!(self.location.lon));
        }
        j
    }
}

/// Builder for [`GeoTextObject`], enforcing the "at least one textual
/// attribute" invariant at [`ObjectBuilder::build`] time.
#[derive(Debug, Clone)]
pub struct ObjectBuilder {
    id: ObjectId,
    location: GeoPoint,
    attrs: AttributeSet,
}

impl ObjectBuilder {
    /// Adds an attribute.
    #[must_use]
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<AttributeValue>) -> Self {
        self.attrs.set(key, value);
        self
    }

    /// Finishes the object, validating the textual-attribute invariant.
    pub fn build(self) -> Result<GeoTextObject, GeoTextError> {
        if !self.attrs.has_textual() {
            return Err(GeoTextError::NoTextualAttribute { id: self.id.0 });
        }
        Ok(GeoTextObject {
            id: self.id,
            location: self.location,
            attrs: self.attrs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GeoTextObject {
        GeoTextObject::builder(ObjectId(7), GeoPoint::new(36.162649, -86.775973).unwrap())
            .attr("name", "Mike's Ice Cream")
            .attr("address", "129 2nd Ave N")
            .attr("stars", 1.5)
            .attr("tip_count", 10i64)
            .attr("is_open", true)
            .attr(
                "categories",
                vec![
                    "Ice Cream & Frozen Yogurt".to_owned(),
                    "Fast Food".to_owned(),
                ],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn builder_builds_sample_record() {
        let o = sample();
        assert_eq!(o.name(), "Mike's Ice Cream");
        assert_eq!(o.id.to_string(), "o7");
        assert_eq!(o.attrs.get("stars").unwrap().as_f64(), Some(1.5));
    }

    #[test]
    fn builder_rejects_all_numeric() {
        let r = GeoTextObject::builder(ObjectId(0), GeoPoint::new(0.0, 0.0).unwrap())
            .attr("stars", 3.0)
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn to_json_includes_coordinates() {
        let j = sample().to_json();
        assert!((j["latitude"].as_f64().unwrap() - 36.162649).abs() < 1e-9);
        assert_eq!(j["name"], "Mike's Ice Cream");
    }

    #[test]
    fn document_contains_all_text() {
        let doc = sample().to_document();
        assert!(doc.contains("Mike's Ice Cream"));
        assert!(doc.contains("Fast Food"));
        assert!(doc.contains("129 2nd Ave N"));
    }

    #[test]
    fn unnamed_object_has_placeholder_name() {
        let o = GeoTextObject::builder(ObjectId(1), GeoPoint::new(0.0, 0.0).unwrap())
            .attr("tips", vec!["great".to_owned()])
            .build()
            .unwrap();
        assert_eq!(o.name(), "<unnamed>");
    }
}

//! Attribute values and attribute sets (`o.A` in the paper).
//!
//! The paper models each object as key–value pairs where "all attribute
//! keys are textual, while the attribute values may be numerical,
//! categorical, or textual, with at least one being textual". The Yelp
//! sample record (paper Table 1) additionally has list-valued attributes
//! (categories, tips) and a map-valued attribute (hours), so the value
//! enum covers those too.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A single attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum AttributeValue {
    /// Free text, e.g. a name, address, or tip summary.
    Text(String),
    /// A real number, e.g. `stars = 1.5`.
    Number(f64),
    /// An integer count, e.g. `tip_count = 10`.
    Integer(i64),
    /// A boolean flag, e.g. `is_open`.
    Bool(bool),
    /// A list of strings, e.g. `categories` or raw `tips`.
    List(Vec<String>),
    /// A string-to-string map, e.g. opening `hours` per weekday.
    Map(BTreeMap<String, String>),
}

impl AttributeValue {
    /// Returns the text content if this is a `Text` value.
    #[must_use]
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttributeValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the list content if this is a `List` value.
    #[must_use]
    pub fn as_list(&self) -> Option<&[String]> {
        match self {
            AttributeValue::List(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the numeric content for `Number` or `Integer` values.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttributeValue::Number(n) => Some(*n),
            AttributeValue::Integer(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Whether the value carries any text usable for keyword querying.
    #[must_use]
    pub fn is_textual(&self) -> bool {
        matches!(
            self,
            AttributeValue::Text(_) | AttributeValue::List(_) | AttributeValue::Map(_)
        )
    }

    /// Flattens the value into a display string used when building
    /// documents for indexing, embedding, or LLM prompts.
    #[must_use]
    pub fn flatten(&self) -> String {
        match self {
            AttributeValue::Text(s) => s.clone(),
            AttributeValue::Number(n) => format!("{n}"),
            AttributeValue::Integer(i) => format!("{i}"),
            AttributeValue::Bool(b) => format!("{b}"),
            AttributeValue::List(v) => v.join(", "),
            AttributeValue::Map(m) => m
                .iter()
                .map(|(k, v)| format!("{k}: {v}"))
                .collect::<Vec<_>>()
                .join(", "),
        }
    }

    /// Converts into a `serde_json::Value`, used when serialising POI
    /// attributes into the refinement prompt ("will be given to you in
    /// JSON format").
    #[must_use]
    pub fn to_json(&self) -> serde_json::Value {
        match self {
            AttributeValue::Text(s) => serde_json::Value::String(s.clone()),
            AttributeValue::Number(n) => serde_json::json!(n),
            AttributeValue::Integer(i) => serde_json::json!(i),
            AttributeValue::Bool(b) => serde_json::Value::Bool(*b),
            AttributeValue::List(v) => serde_json::json!(v),
            AttributeValue::Map(m) => serde_json::json!(m),
        }
    }
}

impl fmt::Display for AttributeValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.flatten())
    }
}

impl From<&str> for AttributeValue {
    fn from(s: &str) -> Self {
        AttributeValue::Text(s.to_owned())
    }
}

impl From<String> for AttributeValue {
    fn from(s: String) -> Self {
        AttributeValue::Text(s)
    }
}

impl From<f64> for AttributeValue {
    fn from(n: f64) -> Self {
        AttributeValue::Number(n)
    }
}

impl From<i64> for AttributeValue {
    fn from(i: i64) -> Self {
        AttributeValue::Integer(i)
    }
}

impl From<bool> for AttributeValue {
    fn from(b: bool) -> Self {
        AttributeValue::Bool(b)
    }
}

impl From<Vec<String>> for AttributeValue {
    fn from(v: Vec<String>) -> Self {
        AttributeValue::List(v)
    }
}

/// An ordered set of named attributes (insertion order preserved so that
/// prompt serialisations are deterministic).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AttributeSet {
    entries: Vec<(String, AttributeValue)>,
}

impl AttributeSet {
    /// Creates an empty attribute set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces an attribute, preserving original position on
    /// replacement.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<AttributeValue>) {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks up an attribute by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&AttributeValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Convenience accessor for a text attribute.
    #[must_use]
    pub fn get_text(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(AttributeValue::as_text)
    }

    /// Removes an attribute, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<AttributeValue> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Number of attributes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttributeValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether at least one attribute value is textual — the paper's
    /// well-formedness condition for keyword-based querying.
    #[must_use]
    pub fn has_textual(&self) -> bool {
        self.entries.iter().any(|(_, v)| v.is_textual())
    }

    /// Concatenates all textual content into one document string
    /// (`key: value` lines), used for indexing and embedding input.
    #[must_use]
    pub fn to_document(&self) -> String {
        let mut doc = String::new();
        for (k, v) in &self.entries {
            if !doc.is_empty() {
                doc.push('\n');
            }
            doc.push_str(k);
            doc.push_str(": ");
            doc.push_str(&v.flatten());
        }
        doc
    }

    /// Serialises the attribute set into a JSON object (insertion order).
    #[must_use]
    pub fn to_json(&self) -> serde_json::Value {
        let mut map = serde_json::Map::new();
        for (k, v) in &self.entries {
            map.insert(k.clone(), v.to_json());
        }
        serde_json::Value::Object(map)
    }
}

impl FromIterator<(String, AttributeValue)> for AttributeSet {
    fn from_iter<T: IntoIterator<Item = (String, AttributeValue)>>(iter: T) -> Self {
        let mut set = AttributeSet::new();
        for (k, v) in iter {
            set.set(k, v);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_replace() {
        let mut a = AttributeSet::new();
        a.set("name", "Mike's Ice Cream");
        a.set("stars", 1.5);
        assert_eq!(a.get_text("name"), Some("Mike's Ice Cream"));
        assert_eq!(a.get("stars").unwrap().as_f64(), Some(1.5));
        a.set("stars", 4.0);
        assert_eq!(a.get("stars").unwrap().as_f64(), Some(4.0));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn insertion_order_preserved() {
        let mut a = AttributeSet::new();
        a.set("z", 1i64);
        a.set("a", 2i64);
        a.set("m", 3i64);
        let keys: Vec<_> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn remove_works() {
        let mut a = AttributeSet::new();
        a.set("x", true);
        assert!(a.remove("x").is_some());
        assert!(a.remove("x").is_none());
        assert!(a.is_empty());
    }

    #[test]
    fn has_textual_detects_lists_and_maps() {
        let mut a = AttributeSet::new();
        a.set("stars", 3.5);
        assert!(!a.has_textual());
        a.set("categories", vec!["Ice Cream".to_owned()]);
        assert!(a.has_textual());
    }

    #[test]
    fn flatten_map_is_sorted_and_stable() {
        let mut m = BTreeMap::new();
        m.insert("Monday".to_owned(), "0:0-0:0".to_owned());
        m.insert("Friday".to_owned(), "8:0-19:0".to_owned());
        let v = AttributeValue::Map(m);
        assert_eq!(v.flatten(), "Friday: 8:0-19:0, Monday: 0:0-0:0");
    }

    #[test]
    fn to_document_joins_lines() {
        let mut a = AttributeSet::new();
        a.set("name", "Pep Boys");
        a.set(
            "categories",
            vec!["Automotive".to_owned(), "Tires".to_owned()],
        );
        let doc = a.to_document();
        assert_eq!(doc, "name: Pep Boys\ncategories: Automotive, Tires");
    }

    #[test]
    fn to_json_round_trips_types() {
        let mut a = AttributeSet::new();
        a.set("name", "X");
        a.set("stars", 4.5);
        a.set("tip_count", 10i64);
        a.set("is_open", true);
        let j = a.to_json();
        assert_eq!(j["name"], "X");
        assert_eq!(j["stars"], 4.5);
        assert_eq!(j["tip_count"], 10);
        assert_eq!(j["is_open"], true);
    }
}

//! # geotext — the geo-textual data model
//!
//! Shared substrate for the SemaSK reproduction. A *geo-textual object*
//! (paper Section 3) is an object `o` with a location attribute `o.l`
//! (a pair of geo-coordinates) plus a set of non-spatial attributes `o.A`
//! represented as key–value pairs whose keys are textual and whose values
//! may be textual, numerical, categorical, boolean, lists, or maps (e.g.
//! opening hours).
//!
//! This crate provides:
//!
//! - [`GeoPoint`] — WGS84 latitude/longitude with great-circle distance,
//! - [`BoundingBox`] — axis-aligned query ranges (`q.r` in the paper),
//! - [`AttributeValue`] / [`AttributeSet`] — the `o.A` attribute model,
//! - [`GeoTextObject`] — a full geo-textual object (POI),
//! - [`Dataset`] — an in-memory collection with id lookup and text
//!   statistics (used to check the generator against the paper's dataset
//!   statistics: 19,795 POIs, avg 11 tips / 147 tokens per POI).

#![warn(missing_docs)]

pub mod attr;
pub mod bbox;
pub mod dataset;
pub mod error;
pub mod object;
pub mod point;

pub use attr::{AttributeSet, AttributeValue};
pub use bbox::BoundingBox;
pub use dataset::{Dataset, DatasetStats};
pub use error::GeoTextError;
pub use object::{GeoTextObject, ObjectBuilder, ObjectId};
pub use point::GeoPoint;

/// Mean Earth radius in kilometres (IUGG value), used by all distance
/// computations in the workspace.
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

//! Property tests for the wire protocol: every envelope round-trips
//! bit-exactly, and no byte soup can panic a decoder.
//!
//! Round trips are checked by **canonical bytes**: `encode(decode(
//! encode(x)))` must equal `encode(x)`. That covers every field —
//! including float payloads, which travel as raw IEEE-754 bits, so even
//! NaN payload patterns must survive.

use proptest::prelude::*;

use geotext::BoundingBox;
use semask::{LatencyBreakdown, QueryOutcome, RankedPoi, SemaSkQuery, StrategyCost};
use semask_net::proto::{
    self, strategy_code, strategy_from_code, FrameKind, ShardQuery, ShardReply,
};
use semask_serve::api::{CacheStatus, Priority, Request, Response, ServeStatus};
use vecdb::{ScoredPoint, ShardSpec};

fn range_from(bits: (u64, u64, u64, u64)) -> BoundingBox {
    // Arbitrary bit patterns: the codec must not care whether the
    // geometry is sane, only that the bits survive.
    BoundingBox {
        min_lat: f64::from_bits(bits.0),
        min_lon: f64::from_bits(bits.1),
        max_lat: f64::from_bits(bits.2),
        max_lon: f64::from_bits(bits.3),
    }
}

fn status_from(code: u8, message: String) -> ServeStatus {
    ServeStatus::from_code(code % 7, message).expect("codes 0..=6 are valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn requests_round_trip_canonically(
        id in 0u64..u64::MAX,
        bits in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
        text in "[ -~]{0,48}",
        kw in (0u8..2, "[a-z ]{0,16}"),
        prio in 0u8..3,
        deadline in (0u8..2, 0u64..86_400_000_000),
    ) {
        let mut request = Request::new(id, SemaSkQuery {
            range: range_from(bits),
            text,
            keywords: (kw.0 == 1).then_some(kw.1),
        })
        .with_priority(Priority::from_code(prio).expect("codes 0..=2 are valid"));
        if deadline.0 == 1 {
            request = request.with_deadline(std::time::Duration::from_micros(deadline.1));
        }
        let bytes = proto::encode_request(&request);
        let decoded = proto::decode_request(&bytes).expect("round trip");
        prop_assert_eq!(proto::encode_request(&decoded), bytes);

        // And through a full frame.
        let mut wire = Vec::new();
        proto::write_frame(&mut wire, FrameKind::Submit, id, &proto::encode_request(&request))
            .expect("write");
        let frame = proto::read_frame(&mut wire.as_slice()).expect("read");
        prop_assert_eq!(frame.corr, id);
        prop_assert_eq!(&frame.payload, &proto::encode_request(&request));
    }

    #[test]
    fn responses_round_trip_canonically(
        id in 0u64..u64::MAX,
        status_raw in (0u8..16, "[ -~]{0,32}"),
        has_outcome in 0u8..2,
        pois in prop::collection::vec(
            (0u32..u32::MAX, "[ -~]{0,24}", 0u32..u32::MAX, 0u8..2, "[ -~]{0,24}"),
            0..6,
        ),
        latency_bits in prop::collection::vec(0u64..u64::MAX, 8),
        cached_code in 0u8..3,
    ) {
        let status = status_from(status_raw.0, status_raw.1);
        let cached = CacheStatus::from_code(cached_code).expect("codes 0..=2 are valid");
        let outcome = (has_outcome == 1).then(|| QueryOutcome {
            pois: pois
                .iter()
                .map(|(id, name, score_bits, rec, reason)| RankedPoi {
                    id: geotext::ObjectId(*id),
                    name: name.clone(),
                    embed_score: f32::from_bits(*score_bits),
                    recommended: *rec == 1,
                    reason: reason.clone(),
                })
                .collect(),
            latency: LatencyBreakdown {
                filtering_ms: f64::from_bits(latency_bits[0]),
                retrieval_ms: f64::from_bits(latency_bits[1]),
                refinement_ms: f64::from_bits(latency_bits[2]),
                filter_strategy: strategy_from_code((latency_bits[3] % 4) as u8),
                estimated_selectivity: f64::from_bits(latency_bits[4]),
                predicted_cost_us: f64::from_bits(latency_bits[5]),
                runner_up: Some(StrategyCost {
                    strategy: strategy_from_code((latency_bits[6] % 4) as u8)
                        .expect("codes 0..=3 are valid"),
                    predicted_us: f64::from_bits(latency_bits[7]),
                    viable: latency_bits[7] % 2 == 0,
                }),
                cost_model_version: latency_bits[0],
                shard_candidates: vec![latency_bits[1] as usize % 1024, 3],
                shard_predicted_us: vec![f64::from_bits(latency_bits[2])],
            },
        });
        let response = Response { id, outcome, status, cached };
        let bytes = proto::encode_response(&response);
        let decoded = proto::decode_response(&bytes).expect("round trip");
        prop_assert_eq!(decoded.id, id);
        prop_assert_eq!(decoded.cached, cached);
        prop_assert_eq!(proto::encode_response(&decoded), bytes);
    }

    #[test]
    fn shard_envelopes_round_trip(
        text in "[ -~]{0,48}",
        bits in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
        k in 0u32..1000,
        ef in (0u8..2, 1u32..100_000),
        strat in 0u8..4,
        topo in (1u32..64, 0u32..64),
        hits in prop::collection::vec((0u64..u64::MAX, 0u32..u32::MAX), 0..32),
    ) {
        let query = ShardQuery {
            text,
            range: range_from(bits),
            k,
            ef: (ef.0 == 1).then_some(ef.1),
            strategy: strategy_from_code(strat).expect("codes 0..=3 are valid"),
            spec: ShardSpec::new(topo.0, topo.1 % topo.0).expect("shard < shards"),
        };
        let decoded = proto::decode_shard_query(&proto::encode_shard_query(&query))
            .expect("round trip");
        prop_assert_eq!(&decoded, &query);
        prop_assert_eq!(strategy_from_code(strategy_code(decoded.strategy)), Some(query.strategy));

        let reply = ShardReply {
            status: ServeStatus::Ok,
            hits: hits
                .iter()
                .map(|&(id, score_bits)| ScoredPoint {
                    id,
                    score: f32::from_bits(score_bits),
                })
                .collect(),
        };
        let bytes = proto::encode_shard_reply(&reply);
        let decoded = proto::decode_shard_reply(&bytes).expect("round trip");
        prop_assert_eq!(proto::encode_shard_reply(&decoded), bytes);
    }

    #[test]
    fn decoders_never_panic_on_byte_soup(
        payload in prop::collection::vec(0u8..u8::MAX, 0..256),
    ) {
        // Any result is fine; reaching the end of the block means no
        // decoder panicked or overflowed.
        let _ = proto::decode_request(&payload);
        let _ = proto::decode_response(&payload);
        let _ = proto::decode_shard_query(&payload);
        let _ = proto::decode_shard_reply(&payload);
        let _ = proto::read_frame(&mut payload.as_slice());
    }
}

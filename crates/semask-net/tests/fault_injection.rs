//! Fault injection for the network layer.
//!
//! - A killed shard degrades the answer (flagged, partial, bounded
//!   retry) — it never hangs a client and never poisons later queries.
//! - Every shard down is an explicit error, again bounded.
//! - A slow-loris connection (drip-feeding header bytes) is dropped by
//!   the read timeout while the server keeps serving everyone else;
//!   ditto a client that sends garbage instead of a frame.

use std::io::{BufRead, Read, Write};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use semask::EngineError;
use semask_net::boot::{self, NodeParams};
use semask_net::client::{ClientConfig, NetClient};
use semask_net::router::{RouterConfig, ShardRouter};
use semask_net::server::{ServeServer, ServerConfig};
use semask_serve::api::{CacheStatus, Priority, Request, ServeStatus};
use semask_serve::{ServeConfig, ServeEngine};

struct Node {
    child: Child,
    port: u16,
}

impl Node {
    fn spawn_shard(params: &NodeParams, shard: u32) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_semask-shard"))
            .args([
                "--city",
                &params.city.to_string(),
                "--pois",
                &params.pois.to_string(),
                "--seed",
                &params.seed.to_string(),
                "--shards",
                &params.shards.to_string(),
                "--shard",
                &shard.to_string(),
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn shard");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read port line");
        let port = line
            .trim()
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
            .parse()
            .expect("port number");
        Self { child, port }
    }

    fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.port)
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Snappy budgets so fault paths resolve in test time: one retry, short
/// timeouts. The degradation contract is about *bounded* waits, and the
/// bound here is ~2 s worst case per shard.
fn snappy() -> RouterConfig {
    RouterConfig {
        connect_timeout: Duration::from_millis(300),
        read_timeout: Duration::from_millis(800),
        retries: 1,
        backoff: Duration::from_millis(20),
        cost_timeout_factor: 0.0,
    }
}

fn query(engine: &semask::SemaSkEngine) -> semask::SemaSkQuery {
    let center = engine.prepared().city.center();
    semask::SemaSkQuery::new(
        geotext::BoundingBox::from_center_km(center, 6.0, 6.0),
        "late night ramen".to_owned(),
    )
}

#[test]
fn killed_shard_degrades_instead_of_hanging() {
    let params = NodeParams::default();
    let engine = boot::build_engine(&params);
    let shard0 = Node::spawn_shard(&params, 0);
    let mut shard1 = Node::spawn_shard(&params, 1);
    let router = ShardRouter::new(
        Arc::clone(&engine),
        vec![shard0.addr(), shard1.addr()],
        snappy(),
    )
    .expect("topology");
    let q = query(&engine);

    // Healthy fabric: complete answer, bit-identical to in-process.
    let healthy = router.route_query(&q).expect("healthy route");
    assert!(!healthy.degraded);
    let reference = engine.query(&q).expect("reference");
    assert_eq!(
        healthy
            .outcome
            .pois
            .iter()
            .map(|p| p.id.0)
            .collect::<Vec<_>>(),
        reference.pois.iter().map(|p| p.id.0).collect::<Vec<_>>()
    );

    // Kill shard 1 mid-service.
    shard1.kill();
    let t0 = Instant::now();
    let degraded = router
        .route_query(&q)
        .expect("degraded route still answers");
    let elapsed = t0.elapsed();
    assert!(degraded.degraded, "missing slice must be flagged");
    assert_eq!(degraded.shard_errors.len(), 1);
    assert!(
        degraded.shard_errors[0].starts_with("shard 1:"),
        "error names the failed shard: {:?}",
        degraded.shard_errors
    );
    // Partial but honest: every returned hit belongs to the live shard.
    assert!(!degraded.outcome.pois.is_empty(), "shard 0 still answers");
    for poi in &degraded.outcome.pois {
        assert_eq!(
            vecdb::shard_of(u64::from(poi.id.0), 2),
            0,
            "a dead shard cannot contribute hits"
        );
    }
    // Bounded: retry budget is 1 retry at 20 ms backoff over fast-fail
    // connects; even on a slow container this stays well under the
    // router's per-shard worst case.
    assert!(
        elapsed < Duration::from_secs(5),
        "degradation took {elapsed:?}, which smells like a hang"
    );

    // The fabric stays healthy for the survivors on later queries.
    let again = router.route_query(&q).expect("route after failure");
    assert!(again.degraded);
    assert_eq!(
        again
            .outcome
            .pois
            .iter()
            .map(|p| p.id.0)
            .collect::<Vec<_>>(),
        degraded
            .outcome
            .pois
            .iter()
            .map(|p| p.id.0)
            .collect::<Vec<_>>(),
        "degraded answers are deterministic"
    );
}

#[test]
fn all_shards_down_is_an_error_not_a_hang() {
    let params = NodeParams {
        shards: 1,
        ..NodeParams::default()
    };
    let engine = boot::build_engine(&params);
    let mut shard = Node::spawn_shard(&params, 0);
    let addr = shard.addr();
    shard.kill();

    let router = ShardRouter::new(engine, vec![addr], snappy()).expect("topology");
    let q = query(router.engine());
    let t0 = Instant::now();
    let err = router.route_query(&q).expect_err("no shard can answer");
    assert!(
        matches!(err, EngineError::Remote { .. }),
        "unexpected error: {err}"
    );
    assert!(t0.elapsed() < Duration::from_secs(5));
}

#[test]
fn slow_loris_times_out_while_the_server_keeps_serving() {
    let params = NodeParams {
        city: 0,
        pois: 120,
        seed: 5,
        shards: 1,
    };
    let engine = boot::build_engine(&params);
    let serve = Arc::new(ServeEngine::new(
        Arc::clone(&engine),
        ServeConfig::builder()
            .max_batch(4)
            .latency_budget(Duration::from_millis(1))
            .queue_cap(64)
            .build()
            .expect("valid config"),
    ));
    let mut server = ServeServer::bind(
        ("127.0.0.1", 0),
        Arc::clone(&serve) as Arc<dyn semask_net::server::NetHandler>,
        ServerConfig {
            max_inflight_per_conn: 4,
            read_timeout: Duration::from_millis(250),
        },
    )
    .expect("bind");
    let addr = format!("127.0.0.1:{}", server.local_addr().port());

    // The loris: dribble a valid header prefix, then stall past the
    // read timeout.
    let mut loris = std::net::TcpStream::connect(&addr).expect("loris connect");
    loris
        .write_all(&semask_net::proto::MAGIC.to_le_bytes())
        .expect("loris dribble");
    loris.write_all(&[1u8]).expect("loris dribble");

    // A garbage client: valid connection, nonsense bytes.
    let mut garbage = std::net::TcpStream::connect(&addr).expect("garbage connect");
    garbage
        .write_all(b"GET / HTTP/1.1\r\n\r\n")
        .expect("garbage");

    std::thread::sleep(Duration::from_millis(400));

    // Honest clients are unaffected before, during, and after the
    // victims get dropped.
    let mut client = NetClient::connect(&addr, &ClientConfig::default()).expect("connect");
    let q = query(&engine);
    for id in 0..3u64 {
        let response = client
            .request(&Request::new(id, q.clone()).with_priority(Priority::Normal))
            .expect("served");
        assert_eq!(response.status, ServeStatus::Ok);
        assert!(response.outcome.is_some());
    }

    // Both bad connections are gone: reads observe EOF (or a reset).
    for (name, stream) in [("loris", &mut loris), ("garbage", &mut garbage)] {
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        let mut buf = [0u8; 16];
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("{name} connection still alive, read {n} bytes"),
        }
    }

    server.shutdown();
    serve.shutdown();
}

#[test]
fn cache_hit_flood_shares_admission_fairly() {
    // A hot connection bursting one repeated query shape — after the
    // first miss, pure cache hits — must not starve a cold connection
    // submitting fresh shapes, and the cached fast path must stay
    // invisible to fairness: hits answer from the drain's weighted
    // rotation without ever occupying a batch slot.
    let params = NodeParams {
        city: 1,
        pois: 120,
        seed: 11,
        shards: 1,
    };
    let engine = boot::build_engine(&params);
    let serve = Arc::new(ServeEngine::new(
        Arc::clone(&engine),
        ServeConfig::builder()
            .max_batch(4)
            .latency_budget(Duration::from_millis(1))
            .queue_cap(64)
            .result_cache_entries(128)
            .negative_cache(true)
            .build()
            .expect("valid config"),
    ));
    let mut server = ServeServer::bind(
        ("127.0.0.1", 0),
        Arc::clone(&serve) as Arc<dyn semask_net::server::NetHandler>,
        ServerConfig {
            max_inflight_per_conn: 64,
            read_timeout: Duration::from_secs(5),
        },
    )
    .expect("bind");
    let addr = format!("127.0.0.1:{}", server.local_addr().port());
    let center = engine.prepared().city.center();
    let range = geotext::BoundingBox::from_center_km(center, 6.0, 6.0);

    const FLOOD: u64 = 48;
    let hot_query = semask::SemaSkQuery::new(range, "late night ramen".to_owned());
    // Warm the entry so the flood below is hit-heavy from its first
    // request.
    let mut warm = NetClient::connect(&addr, &ClientConfig::default()).expect("warm connect");
    let warmed = warm
        .request(&Request::new(9_000, hot_query.clone()))
        .expect("warm");
    assert_eq!(warmed.status, ServeStatus::Ok);
    assert_eq!(warmed.cached, CacheStatus::Miss);

    // The hot connection floods its whole burst in one packed write
    // (low priority: quantum 1, one request per drain turn)...
    let mut hot = NetClient::connect(&addr, &ClientConfig::default()).expect("hot connect");
    let burst: Vec<Request> = (0..FLOOD)
        .map(|id| Request::new(id, hot_query.clone()).with_priority(Priority::Low))
        .collect();
    hot.send_requests(&burst).expect("burst send");

    // ...and only then does the cold client start submitting fresh
    // shapes (high priority: quantum 4). With FIFO admission it would
    // sit behind the whole flood; the fair gate owes it a turn per
    // rotation.
    let cold_texts = [
        "quiet coffee with pastries",
        "live music and craft beer",
        "a bookstore to browse for an hour",
        "family friendly pizza",
        "rooftop cocktails at sunset",
        "somewhere warm to read",
    ];
    let mut cold = NetClient::connect(&addr, &ClientConfig::default()).expect("cold connect");
    let t0 = Instant::now();
    for (i, text) in cold_texts.iter().enumerate() {
        let request = Request::new(100 + i as u64, semask::SemaSkQuery::new(range, *text))
            .with_priority(Priority::High);
        let response = cold.request(&request).expect("cold served");
        assert_eq!(response.status, ServeStatus::Ok);
        assert_eq!(response.id, 100 + i as u64);
        assert_eq!(
            response.cached,
            CacheStatus::Miss,
            "fresh shapes must not hit the cache"
        );
        assert!(response.outcome.is_some());
    }
    let cold_elapsed = t0.elapsed();
    assert!(
        cold_elapsed < Duration::from_secs(5),
        "cold client took {cold_elapsed:?} behind a cache-hit flood — starvation"
    );

    // The flood drains completely, in order, overwhelmingly from cache.
    let mut hits = 0u64;
    for id in 0..FLOOD {
        let response = hot.recv_response().expect("hot served");
        assert_eq!(response.id, id, "per-connection FIFO order broke");
        assert_eq!(response.status, ServeStatus::Ok);
        if response.cached == CacheStatus::Hit {
            hits += 1;
        }
    }
    assert_eq!(
        hits, FLOOD,
        "a warmed immutable engine must answer every flood request from cache"
    );

    // Cached answers never occupied a batch slot: only the warm miss
    // and the cold misses were admitted to batching.
    let m = serve.metrics();
    assert_eq!(m.accepted, 1 + cold_texts.len() as u64);
    assert_eq!(m.shed, 0);
    assert!(m.cache_hits >= FLOOD);
    assert_eq!(m.cache_misses, 1 + cold_texts.len() as u64);
    let hit_rate = m.cache_hit_rate().expect("traffic flowed");
    assert!(
        hit_rate > 0.8,
        "mix was supposed to be hit-heavy, got {hit_rate}"
    );

    server.shutdown();
    serve.shutdown();
}

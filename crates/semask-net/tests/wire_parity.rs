//! Cross-process parity: routing queries through real shard server
//! processes over TCP must produce **bit-identical** answers to the
//! in-process sharded engine.
//!
//! Every process (this test, and each spawned `semask-shard`) rebuilds
//! the identical dataset from `(city, pois, seed)` — generation,
//! preparation, and embedding are fully deterministic — so the only
//! thing that can differ is the execution path: in-process
//! `ShardedBackend` fan-out vs plan-ship-merge over the wire. The
//! signature compares ids, raw score bits, and recommendation flags.

use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use semask::{QueryOutcome, SemaSkEngine, SemaSkQuery};
use semask_net::boot::{self, NodeParams};
use semask_net::client::{ClientConfig, NetClient};
use semask_net::router::{RouterConfig, ShardRouter};
use semask_serve::api::{Priority, Request, ServeStatus};

/// A spawned node that dies with its stdin pipe (dropping `Child` after
/// `kill` in [`Drop`] keeps crashed tests from leaking processes).
struct Node {
    child: Child,
    port: u16,
}

impl Node {
    fn spawn(bin: &str, args: &[String]) -> Self {
        let mut child = Command::new(bin)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn node");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read port line");
        let port = line
            .trim()
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
            .parse()
            .expect("port number");
        Self { child, port }
    }

    fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.port)
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_shards(params: &NodeParams) -> Vec<Node> {
    (0..params.shards)
        .map(|shard| {
            Node::spawn(
                env!("CARGO_BIN_EXE_semask-shard"),
                &[
                    "--city".into(),
                    params.city.to_string(),
                    "--pois".into(),
                    params.pois.to_string(),
                    "--seed".into(),
                    params.seed.to_string(),
                    "--shards".into(),
                    params.shards.to_string(),
                    "--shard".into(),
                    shard.to_string(),
                ],
            )
        })
        .collect()
}

/// The bit-exact comparison key: id, raw score bits, recommendation.
type Signature = Vec<(u32, u32, bool)>;

fn signature(outcome: &QueryOutcome) -> Signature {
    outcome
        .pois
        .iter()
        .map(|p| (p.id.0, p.embed_score.to_bits(), p.recommended))
        .collect()
}

fn workload(engine: &SemaSkEngine) -> Vec<SemaSkQuery> {
    let center = engine.prepared().city.center();
    let ranges = [
        geotext::BoundingBox::from_center_km(center, 2.0, 2.0),
        geotext::BoundingBox::from_center_km(center, 5.0, 5.0),
        geotext::BoundingBox::from_center_km(center, 11.0, 11.0),
        geotext::BoundingBox::from_center_km(center, 0.4, 0.4),
    ];
    let texts = [
        "quiet coffee with pastries",
        "live music and craft beer",
        "late night ramen",
        "a bookstore with a reading corner",
    ];
    let mut queries = Vec::new();
    for (i, range) in ranges.iter().enumerate() {
        for (j, text) in texts.iter().enumerate() {
            let mut q = SemaSkQuery::new(*range, format!("{i}-{j}: {text}"));
            // A few keyword queries ride along: those plans are
            // keyword-aware and must fall back to local execution
            // inside the router — still bit-exact.
            if (i + j) % 5 == 4 {
                q.keywords = Some("coffee".to_owned());
            }
            queries.push(q);
        }
    }
    queries
}

#[test]
fn router_over_processes_matches_in_process_engine() {
    let params = NodeParams::default();
    let engine = boot::build_engine(&params);
    let queries = workload(&engine);
    let reference: Vec<Signature> = queries
        .iter()
        .map(|q| signature(&engine.query(q).expect("reference query")))
        .collect();

    let shards = spawn_shards(&params);
    let peers: Vec<String> = shards.iter().map(Node::addr).collect();
    let router =
        ShardRouter::new(Arc::clone(&engine), peers, RouterConfig::default()).expect("topology");

    for (q, expected) in queries.iter().zip(&reference) {
        let routed = router.route_query(q).expect("routed query");
        assert!(
            !routed.degraded,
            "no shard is down, the answer must be complete: {:?}",
            routed.shard_errors
        );
        assert_eq!(
            &signature(&routed.outcome),
            expected,
            "wire answer differs for {:?}",
            q.text
        );
    }
}

#[test]
fn full_wire_path_through_router_process_matches() {
    let params = NodeParams::default();
    let engine = boot::build_engine(&params);
    let queries = workload(&engine);

    let shards = spawn_shards(&params);
    let peers = shards.iter().map(Node::addr).collect::<Vec<_>>().join(",");
    let router = Node::spawn(
        env!("CARGO_BIN_EXE_semask-router"),
        &[
            "--city".into(),
            params.city.to_string(),
            "--pois".into(),
            params.pois.to_string(),
            "--seed".into(),
            params.seed.to_string(),
            "--peers".into(),
            peers,
        ],
    );

    let mut client =
        NetClient::connect(router.addr(), &ClientConfig::default()).expect("connect to router");
    // Pipelined: send everything, then collect — responses come back in
    // FIFO order on one connection.
    for (i, q) in queries.iter().enumerate() {
        let request = Request::new(i as u64, q.clone()).with_priority(Priority::High);
        client.send_request(&request).expect("send");
    }
    for (i, q) in queries.iter().enumerate() {
        let response = client.recv_response().expect("receive");
        assert_eq!(response.id, i as u64, "FIFO order per connection");
        assert_eq!(response.status, ServeStatus::Ok, "query {:?}", q.text);
        let outcome = response.outcome.expect("ok response carries an outcome");
        let expected = engine.query(q).expect("reference query");
        assert_eq!(
            signature(&outcome),
            signature(&expected),
            "wire answer differs for {:?}",
            q.text
        );
    }
}

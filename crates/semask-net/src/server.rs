//! The framed TCP server: thread-per-connection readers feeding a
//! fair-admission drain, with per-connection in-flight caps and write
//! pipelining.
//!
//! Threading model, per connection:
//!
//! ```text
//! reader ──(FairGate, WRR)──▶ drain (1/server) ──▶ handler.handle()
//!    ▲                                                │ Ready/Deferred
//!    │ in-flight slot freed                           ▼
//! writer ◀──(FIFO channel of completions)─────────────┘
//! ```
//!
//! - The **reader** parses frames and blocks when the connection already
//!   has `max_inflight_per_conn` unanswered requests — unread bytes pile
//!   up in the socket and TCP backpressure reaches the client. A read
//!   timeout bounds how long a slow-loris client (drip-feeding header
//!   bytes) can hold the thread: the connection is dropped, the server
//!   keeps serving everyone else.
//! - The **drain** pulls one weighted-round-robin turn at a time from
//!   the [`FairGate`], so a hot connection cannot starve admission for
//!   the rest (the PR 4 follow-up). It calls [`NetHandler::handle`],
//!   which must not block; slow work returns [`Reply::Deferred`].
//! - The **writer** runs deferred completions in FIFO order and owns the
//!   socket's write half, so responses for one connection never
//!   interleave and pipelined clients can match replies in order or by
//!   correlation id.

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use semask_serve::api::{Request, Response, ServeStatus};
use semask_serve::ServeEngine;

use crate::fair::FairGate;
use crate::proto::{self, FrameKind, ShardQuery, ShardReply};

/// Tuning knobs for [`ServeServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum unanswered requests per connection before the reader
    /// stops parsing (and TCP backpressure reaches the client).
    pub max_inflight_per_conn: usize,
    /// Socket read timeout: an idle or slow-loris connection is dropped
    /// after this long without completing a frame.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_inflight_per_conn: 32,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// What [`NetHandler::handle`] hands back to the drain thread.
pub enum Reply {
    /// The response is already known (refusals, validation errors).
    Ready(Response),
    /// The response needs blocking work; the closure runs on the
    /// connection's writer thread (per-connection FIFO), keeping the
    /// shared drain thread unblocked.
    Deferred(Box<dyn FnOnce() -> Response + Send>),
}

/// The application behind a [`ServeServer`]. `handle` is called on the
/// single drain thread and **must not block** — do admission there and
/// defer waiting. `handle_shard` serves the shard fabric; the default
/// refuses, which is correct for front-end servers.
pub trait NetHandler: Send + Sync {
    /// Admits one client request. Runs on the drain thread.
    fn handle(&self, request: Request) -> Reply;

    /// Answers one shard-slice query. Runs on the connection's writer
    /// thread (slice execution may block).
    fn handle_shard(&self, query: ShardQuery) -> ShardReply {
        let _ = query;
        ShardReply {
            status: ServeStatus::EngineError {
                message: "shard queries not supported by this server".into(),
            },
            hits: Vec::new(),
        }
    }
}

/// [`ServeEngine`] speaks the protocol directly: admission via
/// `submit_request` is non-blocking (batching happens behind it), and
/// the ticket wait is deferred to the writer thread.
impl NetHandler for ServeEngine {
    fn handle(&self, request: Request) -> Reply {
        let pending = self.submit_request(request);
        Reply::Deferred(Box::new(move || pending.wait()))
    }
}

/// One completion: runs on the writer thread, produces a frame.
type Completion = Box<dyn FnOnce() -> (FrameKind, u64, Vec<u8>) + Send>;

/// Per-connection in-flight accounting shared by reader and writer.
struct Inflight {
    count: Mutex<usize>,
    freed: Condvar,
    /// Set when the writer half dies so a reader blocked on a slot
    /// stops waiting for releases that will never come.
    dead: AtomicBool,
}

impl Inflight {
    fn new() -> Self {
        Self {
            count: Mutex::new(0),
            freed: Condvar::new(),
            dead: AtomicBool::new(false),
        }
    }

    /// Blocks until a slot frees up; `false` when the connection or
    /// server died while waiting.
    fn acquire(&self, cap: usize, shutdown: &AtomicBool) -> bool {
        let mut count = self.count.lock().expect("inflight lock");
        loop {
            if self.dead.load(Ordering::Acquire) || shutdown.load(Ordering::Acquire) {
                return false;
            }
            if *count < cap {
                *count += 1;
                return true;
            }
            let (guard, _) = self
                .freed
                .wait_timeout(count, Duration::from_millis(100))
                .expect("inflight lock");
            count = guard;
        }
    }

    fn release(&self) {
        let mut count = self.count.lock().expect("inflight lock");
        *count = count.saturating_sub(1);
        drop(count);
        self.freed.notify_one();
    }

    fn mark_dead(&self) {
        self.dead.store(true, Ordering::Release);
        self.freed.notify_all();
    }
}

enum Work {
    Submit { corr: u64, request: Request },
    Shard { corr: u64, query: ShardQuery },
}

struct ConnHandle {
    tx: Sender<Completion>,
    stream: TcpStream,
}

struct ServerShared {
    handler: Arc<dyn NetHandler>,
    config: ServerConfig,
    gate: FairGate<Work>,
    shutdown: AtomicBool,
    conns: Mutex<HashMap<u64, ConnHandle>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// A running TCP server. Bind with [`ServeServer::bind`], stop with
/// [`ServeServer::shutdown`] (also runs on drop).
pub struct ServeServer {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    drain: Option<JoinHandle<()>>,
}

impl ServeServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept and drain threads.
    pub fn bind(
        addr: impl ToSocketAddrs,
        handler: Arc<dyn NetHandler>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(ServerShared {
            handler,
            config,
            gate: FairGate::new(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            workers: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("net-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn accept thread")
        };
        let drain = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("net-drain".into())
                .spawn(move || drain_loop(&shared))
                .expect("spawn drain thread")
        };
        Ok(Self {
            shared,
            local_addr,
            accept: Some(accept),
            drain: Some(drain),
        })
    }

    /// The bound address (read the ephemeral port from here).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains queued work, kills live connections, and
    /// joins every server thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Close the gate: the drain thread finishes queued turns, then
        // exits. Join it before killing sockets so queued responses for
        // live clients still go out.
        self.shared.gate.close();
        if let Some(handle) = self.drain.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Kill live connections: shutdown unblocks readers mid-read,
        // dropping the senders ends each writer's channel.
        let conns = std::mem::take(&mut *self.shared.conns.lock().expect("conn registry"));
        for (_, conn) in conns {
            let _ = conn.stream.shutdown(Shutdown::Both);
            drop(conn.tx);
        }
        let workers = std::mem::take(&mut *self.shared.workers.lock().expect("worker registry"));
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for ServeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    let mut next_conn: u64 = 1;
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_id = next_conn;
                next_conn += 1;
                if let Err(e) = spawn_connection(conn_id, stream, shared) {
                    // Socket setup failed (e.g. peer already gone);
                    // nothing to clean up, keep accepting.
                    let _ = e;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn spawn_connection(conn_id: u64, stream: TcpStream, shared: &Arc<ServerShared>) -> io::Result<()> {
    stream.set_read_timeout(Some(shared.config.read_timeout))?;
    stream.set_nodelay(true)?;
    let write_half = stream.try_clone()?;
    let registry_stream = stream.try_clone()?;
    let (tx, rx) = channel::<Completion>();
    let inflight = Arc::new(Inflight::new());
    shared.conns.lock().expect("conn registry").insert(
        conn_id,
        ConnHandle {
            tx,
            stream: registry_stream,
        },
    );

    let writer = {
        let inflight = Arc::clone(&inflight);
        std::thread::Builder::new()
            .name(format!("net-write-{conn_id}"))
            .spawn(move || writer_loop(rx, write_half, &inflight))
            .expect("spawn writer thread")
    };
    let reader = {
        let shared = Arc::clone(shared);
        let inflight = Arc::clone(&inflight);
        std::thread::Builder::new()
            .name(format!("net-read-{conn_id}"))
            .spawn(move || reader_loop(conn_id, stream, &shared, &inflight))
            .expect("spawn reader thread")
    };
    let mut workers = shared.workers.lock().expect("worker registry");
    workers.push(writer);
    workers.push(reader);
    Ok(())
}

fn reader_loop(
    conn_id: u64,
    mut stream: TcpStream,
    shared: &Arc<ServerShared>,
    inflight: &Arc<Inflight>,
) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let frame = match proto::read_frame(&mut stream) {
            Ok(frame) => frame,
            // Timeouts (idle or slow-loris), EOF, and protocol
            // violations all end the connection; the server itself
            // keeps serving other clients.
            Err(_) => break,
        };
        let work = match frame.kind {
            FrameKind::Submit => match proto::decode_request(&frame.payload) {
                Ok(request) => {
                    let quantum = request.priority.quantum();
                    (
                        Work::Submit {
                            corr: frame.corr,
                            request,
                        },
                        quantum,
                    )
                }
                Err(_) => break,
            },
            FrameKind::ShardQuery => match proto::decode_shard_query(&frame.payload) {
                // Shard slices are latency-critical fan-out legs: give
                // them the high-priority quantum.
                Ok(query) => (
                    Work::Shard {
                        corr: frame.corr,
                        query,
                    },
                    semask_serve::api::Priority::High.quantum(),
                ),
                Err(_) => break,
            },
            // Reply kinds from a client are a protocol violation.
            FrameKind::SubmitReply | FrameKind::ShardReply => break,
        };
        if !inflight.acquire(shared.config.max_inflight_per_conn, &shared.shutdown) {
            break;
        }
        if !shared.gate.push(conn_id, work.0, work.1) {
            inflight.release();
            break;
        }
    }
    // This connection is done: drop its unserved queue and its registry
    // entry (dropping the sender ends the writer once it drains).
    shared.gate.close_conn(conn_id);
    if let Some(conn) = shared.conns.lock().expect("conn registry").remove(&conn_id) {
        let _ = conn.stream.shutdown(Shutdown::Both);
        drop(conn.tx);
    }
}

fn drain_loop(shared: &Arc<ServerShared>) {
    while let Some((conn_id, batch)) = shared.gate.take() {
        let tx = shared
            .conns
            .lock()
            .expect("conn registry")
            .get(&conn_id)
            .map(|c| c.tx.clone());
        for work in batch {
            let completion: Completion = match work {
                Work::Submit { corr, request } => match shared.handler.handle(request) {
                    Reply::Ready(response) => Box::new(move || {
                        (
                            FrameKind::SubmitReply,
                            corr,
                            proto::encode_response(&response),
                        )
                    }),
                    Reply::Deferred(wait) => Box::new(move || {
                        (
                            FrameKind::SubmitReply,
                            corr,
                            proto::encode_response(&wait()),
                        )
                    }),
                },
                Work::Shard { corr, query } => {
                    let handler = Arc::clone(&shared.handler);
                    Box::new(move || {
                        (
                            FrameKind::ShardReply,
                            corr,
                            proto::encode_shard_reply(&handler.handle_shard(query)),
                        )
                    })
                }
            };
            // The writer died (client gone): dropping the completion
            // drops the deferred ticket, which abandons that query's
            // claim safely (the serve layer tolerates dropped tickets).
            if let Some(tx) = &tx {
                let _ = tx.send(completion);
            }
        }
    }
}

fn writer_loop(rx: Receiver<Completion>, mut stream: TcpStream, inflight: &Inflight) {
    while let Ok(produce) = rx.recv() {
        let (kind, corr, payload) = produce();
        let write_ok = proto::write_frame(&mut stream, kind, corr, &payload).is_ok();
        inflight.release();
        if !write_ok {
            break;
        }
    }
    // Unblock a reader waiting on an in-flight slot, then discard
    // whatever is still queued (the connection is gone).
    inflight.mark_dead();
    while let Ok(produce) = rx.try_recv() {
        drop(produce);
        inflight.release();
    }
}

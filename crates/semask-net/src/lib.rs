//! # semask-net — network serving for SemaSK
//!
//! A TCP front end and cross-process shard fabric over the serve layer,
//! built on `std::net` only (the build environment is offline; every
//! transport is loopback-tested plain TCP):
//!
//! ```text
//!                       ┌────────────────────┐
//!  NetClient ──frames──▶│ ServeServer        │   in-process: the same
//!  NetClient ──frames──▶│  readers → FairGate│   envelopes drive
//!                       │  → drain → writers │   ServeEngine::submit_request
//!                       └─────────┬──────────┘
//!                                 │ RouterHandler
//!                       ┌─────────▼──────────┐
//!                       │ ShardRouter        │ plans once, fans out,
//!                       └──┬───────┬───────┬─┘ merges, refines
//!                  ShardQuery  ShardQuery  ShardQuery
//!                       ┌──▼──┐ ┌──▼──┐ ┌──▼──┐
//!                       │shard│ │shard│ │shard│  separate processes,
//!                       │  0  │ │  1  │ │  2  │  each rebuilds the same
//!                       └─────┘ └─────┘ └─────┘  deterministic dataset
//! ```
//!
//! - [`proto`] — the versioned length-prefixed frame protocol and the
//!   request/response envelope codecs (floats as raw bits: answers
//!   survive the wire bit-exactly).
//! - [`fair`] — weighted round-robin admission across connections (the
//!   PR 4 hot-client-starvation fix).
//! - [`server`] — [`server::ServeServer`], thread-per-connection with
//!   per-connection in-flight caps, read timeouts, and pipelined writes.
//! - [`router`] — [`router::ShardRouter`]: bit-exact distributed
//!   filtering with graceful degradation when shards go down.
//! - [`client`] — [`client::NetClient`] with connect retry and
//!   pipelining.
//!
//! The `semask-shard` and `semask-router` binaries wrap the shard and
//! router roles for process-level tests and the `net_serve` example.

#![warn(missing_docs)]

pub mod boot;
pub mod client;
pub mod fair;
pub mod proto;
pub mod router;
pub mod server;

pub use client::{ClientConfig, NetClient};
pub use fair::FairGate;
pub use proto::{Frame, FrameKind, ProtoError, ShardQuery, ShardReply};
pub use router::{RoutedOutcome, RouterConfig, RouterHandler, ShardEngineHandler, ShardRouter};
pub use server::{NetHandler, Reply, ServeServer, ServerConfig};

//! Router process: the TCP front end that plans locally, fans the
//! filtering stage out to shard servers, merges, refines, and serves
//! clients over the framed protocol.
//!
//! ```text
//! semask-router --peers HOST:PORT,HOST:PORT [--city C --pois P --seed S --port PORT]
//! ```
//!
//! The peer list is in shard order and its length fixes the shard
//! fan-out (overriding `--shards`). Prints `LISTENING <port>` once
//! bound and exits when stdin reaches EOF.

use std::io::Write;
use std::sync::Arc;

use semask_net::boot;
use semask_net::router::{RouterConfig, RouterHandler, ShardRouter};
use semask_net::server::{ServeServer, ServerConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let peers: Vec<String> = boot::flag_value(&args, "--peers")
        .expect("--peers host:port[,host:port...] is required")
        .split(',')
        .map(str::to_owned)
        .collect();
    let mut params = boot::node_params(&args);
    params.shards = peers.len() as u32;
    let port: u16 = boot::flag_parsed(&args, "--port", 0);

    let engine = boot::build_engine(&params);
    let router = Arc::new(
        ShardRouter::new(engine, peers, RouterConfig::default()).expect("router topology"),
    );
    let handler = Arc::new(RouterHandler::new(router));
    let mut server = ServeServer::bind(("127.0.0.1", port), handler, ServerConfig::default())
        .expect("bind router server");

    println!("LISTENING {}", server.local_addr().port());
    std::io::stdout().flush().expect("flush port line");

    boot::wait_for_stdin_eof();
    server.shutdown();
}

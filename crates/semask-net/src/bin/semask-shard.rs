//! Shard server process: rebuilds the deterministic dataset and answers
//! shard-slice queries (and direct client queries) over the framed
//! protocol.
//!
//! ```text
//! semask-shard --shard I [--shards N --city C --pois P --seed S --port PORT]
//! ```
//!
//! Prints `LISTENING <port>` once bound (drivers parse this to learn an
//! ephemeral port) and exits when stdin reaches EOF.

use std::io::Write;
use std::sync::Arc;

use semask_net::boot;
use semask_net::router::ShardEngineHandler;
use semask_net::server::{ServeServer, ServerConfig};
use vecdb::ShardSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let params = boot::node_params(&args);
    let shard: u32 = boot::flag_parsed(&args, "--shard", 0);
    let port: u16 = boot::flag_parsed(&args, "--port", 0);
    let spec = ShardSpec::new(params.shards, shard)
        .unwrap_or_else(|| panic!("shard {shard} out of range for {} shards", params.shards));

    let engine = boot::build_engine(&params);
    let handler = Arc::new(ShardEngineHandler::new(engine, spec));
    let mut server = ServeServer::bind(("127.0.0.1", port), handler, ServerConfig::default())
        .expect("bind shard server");

    println!("LISTENING {}", server.local_addr().port());
    std::io::stdout().flush().expect("flush port line");

    boot::wait_for_stdin_eof();
    server.shutdown();
}

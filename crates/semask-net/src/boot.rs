//! Process bootstrap shared by the `semask-shard` / `semask-router`
//! binaries and the `net_serve` example: CLI-style flag parsing and the
//! deterministic engine build.
//!
//! Every node in the fabric rebuilds the **identical** dataset from
//! `(city, pois, seed)` — generation and preparation are fully
//! deterministic, so no data ever travels between processes; only
//! queries and answers do.

use std::sync::Arc;

use semask::{prepare_city, PlannerConfig, SemaSkConfig, SemaSkEngine, Variant};

/// Dataset/topology parameters every node must agree on.
#[derive(Debug, Clone)]
pub struct NodeParams {
    /// Index into [`datagen::CITIES`].
    pub city: usize,
    /// POIs to generate.
    pub pois: usize,
    /// Generation seed.
    pub seed: u64,
    /// Shard fan-out of the planner (and of the process topology).
    pub shards: u32,
}

impl Default for NodeParams {
    fn default() -> Self {
        Self {
            city: 2,
            pois: 320,
            seed: 17,
            shards: 2,
        }
    }
}

/// Reads `--flag value` pairs from an argument list; later occurrences
/// win. Unknown flags are ignored (forward compatibility between a
/// driver and its spawned nodes).
#[must_use]
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.windows(2)
        .rev()
        .find(|pair| pair[0] == flag)
        .map(|pair| pair[1].clone())
}

/// [`flag_value`] parsed, falling back to `default` when absent.
///
/// # Panics
/// Exits with a message when the value does not parse — these binaries
/// are driven by tests and the example, so a typo should fail loudly.
#[must_use]
pub fn flag_parsed<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match flag_value(args, flag) {
        None => default,
        Some(raw) => raw
            .parse()
            .unwrap_or_else(|_| panic!("invalid value {raw:?} for {flag}")),
    }
}

/// Extracts [`NodeParams`] from CLI args
/// (`--city N --pois N --seed N --shards N`, all optional).
#[must_use]
pub fn node_params(args: &[String]) -> NodeParams {
    let defaults = NodeParams::default();
    NodeParams {
        city: flag_parsed(args, "--city", defaults.city),
        pois: flag_parsed(args, "--pois", defaults.pois),
        seed: flag_parsed(args, "--seed", defaults.seed),
        shards: flag_parsed(args, "--shards", defaults.shards),
    }
}

/// Builds the deterministic engine every node shares: generated city,
/// sharded planner with a **frozen** cost model (`online_updates:
/// false` — cross-process parity needs every node to keep planning from
/// identical state), SemaSK-EM variant (refinement stays deterministic
/// and cheap for the wire tests; the router refines centrally anyway).
///
/// # Panics
/// When preparation fails — a node that cannot build its dataset cannot
/// serve, so it dies loudly before binding a port.
#[must_use]
pub fn build_engine(params: &NodeParams) -> Arc<SemaSkEngine> {
    let data = datagen::poi::generate_city(&datagen::CITIES[params.city], params.pois, params.seed);
    let llm = Arc::new(llm::SimLlm::new());
    let config = SemaSkConfig {
        planner: PlannerConfig {
            shards: params.shards as usize,
            online_updates: false,
            ..PlannerConfig::default()
        },
        ..SemaSkConfig::default()
    };
    let prepared = Arc::new(prepare_city(&data, &llm, &config).expect("prepare city"));
    Arc::new(SemaSkEngine::new(
        prepared,
        llm,
        config,
        Variant::EmbeddingOnly,
    ))
}

/// Blocks until stdin reaches EOF — the lifecycle contract for spawned
/// nodes: the parent holds the child's stdin pipe and closing it (or
/// the parent dying) shuts the node down. No signals needed.
pub fn wait_for_stdin_eof() {
    use std::io::Read;
    let mut sink = [0u8; 256];
    let mut stdin = std::io::stdin();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
}

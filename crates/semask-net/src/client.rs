//! Blocking client for the framed protocol, with connect retry and
//! explicit pipelining.
//!
//! [`NetClient::request`] is the simple call-and-wait form.
//! [`NetClient::send_request`] / [`NetClient::recv_response`] split the
//! two halves so a client can keep several requests in flight on one
//! connection; the server answers each connection in FIFO order, and
//! every response also carries the request id for by-id matching.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use semask_serve::api::{Request, Response};

use crate::proto::{self, FrameKind, ProtoError};

/// Connection policy for [`NetClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect budget per attempt.
    pub connect_timeout: Duration,
    /// How long a [`NetClient::recv_response`] waits before giving up.
    pub read_timeout: Duration,
    /// Connect retries after the first failed attempt (covers the races
    /// where a freshly spawned server has not bound its port yet).
    pub connect_retries: usize,
    /// Backoff before the first connect retry; doubles per retry.
    pub backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(30),
            connect_retries: 5,
            backoff: Duration::from_millis(40),
        }
    }
}

/// One client connection to a [`crate::server::ServeServer`].
pub struct NetClient {
    stream: TcpStream,
}

impl NetClient {
    /// Connects with the config's retry/backoff budget.
    ///
    /// # Errors
    /// [`ProtoError::Io`] when every attempt failed.
    pub fn connect(addr: impl ToSocketAddrs, config: &ClientConfig) -> Result<Self, ProtoError> {
        let resolved: Vec<_> = addr.to_socket_addrs()?.collect();
        let mut delay = config.backoff;
        let mut last = std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no addresses");
        for attempt in 0..=config.connect_retries {
            for sock_addr in &resolved {
                match TcpStream::connect_timeout(sock_addr, config.connect_timeout) {
                    Ok(stream) => {
                        stream.set_nodelay(true)?;
                        stream.set_read_timeout(Some(config.read_timeout))?;
                        return Ok(Self { stream });
                    }
                    Err(e) => last = e,
                }
            }
            if attempt < config.connect_retries {
                std::thread::sleep(delay);
                delay = delay.saturating_mul(2);
            }
        }
        Err(ProtoError::Io(last))
    }

    /// Sends one request without waiting (pipelining half).
    ///
    /// # Errors
    /// [`ProtoError::Io`] when the connection broke.
    pub fn send_request(&mut self, request: &Request) -> Result<(), ProtoError> {
        proto::write_frame(
            &mut self.stream,
            FrameKind::Submit,
            request.id,
            &proto::encode_request(request),
        )
    }

    /// Sends a whole burst of requests in **one** `write_all` (one
    /// syscall, one TCP push) instead of one write per request. This is
    /// what lets a pipelining client actually fill server batches: with
    /// per-request writes and `TCP_NODELAY`, each request tends to
    /// arrive as its own segment and the server's latency window
    /// flushes sub-cap batches between them; a packed burst arrives
    /// together, so the whole burst is eligible for one flush.
    /// Responses still come back one per request, FIFO — drain with
    /// [`NetClient::recv_response`].
    ///
    /// # Errors
    /// [`ProtoError::Io`] when the connection broke; nothing is written
    /// if any request fails to encode.
    pub fn send_requests(&mut self, requests: &[Request]) -> Result<(), ProtoError> {
        use std::io::Write;
        let mut buf = Vec::new();
        for request in requests {
            proto::encode_frame_into(
                &mut buf,
                FrameKind::Submit,
                request.id,
                &proto::encode_request(request),
            )?;
        }
        self.stream.write_all(&buf)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Receives the next pipelined response (FIFO per connection).
    ///
    /// # Errors
    /// Timeouts surface as [`ProtoError::Io`] with
    /// [`ProtoError::is_timeout`]; anything else means the connection is
    /// unusable.
    pub fn recv_response(&mut self) -> Result<Response, ProtoError> {
        let frame = proto::read_frame(&mut self.stream)?;
        if frame.kind != FrameKind::SubmitReply {
            return Err(ProtoError::Malformed("expected a submit reply"));
        }
        proto::decode_response(&frame.payload)
    }

    /// Call-and-wait: [`NetClient::send_request`] then
    /// [`NetClient::recv_response`].
    ///
    /// # Errors
    /// See the two halves.
    pub fn request(&mut self, request: &Request) -> Result<Response, ProtoError> {
        self.send_request(request)?;
        self.recv_response()
    }

    /// Overrides the read timeout for subsequent receives.
    ///
    /// # Errors
    /// [`ProtoError::Io`] when the socket rejects the option.
    pub fn set_read_timeout(&mut self, timeout: Duration) -> Result<(), ProtoError> {
        self.stream.set_read_timeout(Some(timeout))?;
        Ok(())
    }
}

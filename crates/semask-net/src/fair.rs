//! Weighted round-robin fair admission across connections.
//!
//! The PR 4 serve layer admits strictly FIFO, so one hot client that
//! floods the queue starves everyone else (the documented
//! hot-client-starvation follow-up). [`FairGate`] fixes that at the
//! network edge: each connection gets its own queue, and a single drain
//! thread serves connections in rotation, taking up to the head item's
//! *quantum* (derived from [`semask_serve::api::Priority`]) per turn.
//! Combined with the per-connection in-flight cap in the server (which
//! pushes back on the socket via unread bytes), no connection can
//! monopolize admission no matter how fast it writes.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

struct GateState<T> {
    /// Per-connection FIFO of `(item, quantum)`.
    queues: HashMap<u64, VecDeque<(T, usize)>>,
    /// Round-robin rotation of connections that have queued items.
    order: VecDeque<u64>,
    closed: bool,
}

/// A blocking multi-producer queue that drains fairly across producers.
pub struct FairGate<T> {
    state: Mutex<GateState<T>>,
    ready: Condvar,
}

impl<T> Default for FairGate<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FairGate<T> {
    /// Creates an open gate with no queues.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: Mutex::new(GateState {
                queues: HashMap::new(),
                order: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues `item` for `conn` with the given drain quantum. Returns
    /// `false` (dropping the item) once the gate is closed.
    pub fn push(&self, conn: u64, item: T, quantum: usize) -> bool {
        let mut state = self.state.lock().expect("gate lock");
        if state.closed {
            return false;
        }
        let queue = state.queues.entry(conn).or_default();
        let was_empty = queue.is_empty();
        queue.push_back((item, quantum.max(1)));
        if was_empty {
            state.order.push_back(conn);
        }
        drop(state);
        self.ready.notify_one();
        true
    }

    /// Blocks until a connection has queued work, then returns that
    /// connection's id and up to one quantum of its items (the quantum
    /// of the batch's head item — a high-priority head earns the whole
    /// turn its larger slice). The connection is rotated to the back of
    /// the order, so `N` active connections each get every `N`-th turn.
    ///
    /// Returns `None` only when the gate is closed **and** fully
    /// drained: close is graceful, queued work still gets served.
    pub fn take(&self) -> Option<(u64, Vec<T>)> {
        let mut state = self.state.lock().expect("gate lock");
        loop {
            if let Some(turn) = Self::pop_turn(&mut state) {
                return Some(turn);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("gate lock");
        }
    }

    /// Non-blocking [`FairGate::take`]; `None` when nothing is queued
    /// right now (deterministic unit tests use this).
    pub fn try_take(&self) -> Option<(u64, Vec<T>)> {
        let mut state = self.state.lock().expect("gate lock");
        Self::pop_turn(&mut state)
    }

    fn pop_turn(state: &mut GateState<T>) -> Option<(u64, Vec<T>)> {
        let conn = state.order.pop_front()?;
        let queue = state.queues.get_mut(&conn).expect("queued conn");
        let quantum = queue.front().map_or(1, |(_, q)| *q);
        let mut batch = Vec::with_capacity(quantum.min(queue.len()));
        for _ in 0..quantum {
            match queue.pop_front() {
                Some((item, _)) => batch.push(item),
                None => break,
            }
        }
        if queue.is_empty() {
            state.queues.remove(&conn);
        } else {
            state.order.push_back(conn);
        }
        Some((conn, batch))
    }

    /// Drops everything queued for one connection (it disconnected; its
    /// pending work has nowhere to go).
    pub fn close_conn(&self, conn: u64) {
        let mut state = self.state.lock().expect("gate lock");
        state.queues.remove(&conn);
        state.order.retain(|&c| c != conn);
    }

    /// Closes the gate: future pushes are refused, queued work is still
    /// drained, and [`FairGate::take`] returns `None` once empty.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("gate lock");
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_round_robin_across_connections() {
        let gate = FairGate::new();
        // Conn 1 floods 6 items before conn 2 queues its single one.
        for i in 0..6 {
            assert!(gate.push(1, format!("a{i}"), 1));
        }
        assert!(gate.push(2, "b0".to_string(), 1));
        let turns: Vec<u64> =
            std::iter::from_fn(|| gate.try_take().map(|(conn, _)| conn)).collect();
        // Conn 2 is served on the second turn, not after conn 1's flood.
        assert_eq!(turns, vec![1, 2, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn quantum_sizes_the_turn() {
        let gate = FairGate::new();
        for i in 0..5 {
            assert!(gate.push(1, i, 4));
        }
        assert!(gate.push(2, 100, 1));
        let (conn, batch) = gate.try_take().expect("turn 1");
        assert_eq!((conn, batch), (1, vec![0, 1, 2, 3]));
        let (conn, batch) = gate.try_take().expect("turn 2");
        assert_eq!((conn, batch), (2, vec![100]));
        let (conn, batch) = gate.try_take().expect("turn 3");
        assert_eq!((conn, batch), (1, vec![4]));
        assert!(gate.try_take().is_none());
    }

    #[test]
    fn close_drains_then_stops() {
        let gate = FairGate::new();
        assert!(gate.push(7, "queued", 1));
        gate.close();
        assert!(!gate.push(7, "refused", 1));
        assert_eq!(gate.take(), Some((7, vec!["queued"])));
        assert_eq!(gate.take(), None);
    }

    #[test]
    fn close_conn_discards_its_queue_only() {
        let gate = FairGate::new();
        assert!(gate.push(1, "gone", 1));
        assert!(gate.push(2, "kept", 1));
        gate.close_conn(1);
        assert_eq!(gate.try_take(), Some((2, vec!["kept"])));
        assert!(gate.try_take().is_none());
    }
}

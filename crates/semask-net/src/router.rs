//! The cross-process shard router: plans locally, fans the filtering
//! stage out to shard servers over the wire, merges with the k-way
//! merge, and finishes with the engine's own refinement.
//!
//! Parity contract: with a frozen cost model (`online_updates: false`),
//! routing a query through `N` shard processes produces **bit-identical
//! answers** to the in-process [`semask::ShardedBackend`] — the router
//! is the sole planner (shards execute the shipped strategy, never
//! re-plan), shards embed the query text with the same deterministic
//! embedder, each answers only its [`vecdb::ShardSpec`] slice, and
//! [`vecdb::merge_top_k`] reproduces the in-process merge exactly.
//! Keyword-aware plans score against the *global* collection, which
//! cannot be fanned out bit-exactly, so those queries execute locally
//! on the router's own engine.
//!
//! Degradation contract: a down shard costs a bounded retry-with-backoff
//! per attempt budget, then its slice is dropped and the merged result
//! is flagged degraded — a client gets a partial answer with an explicit
//! [`semask_serve::api::ServeStatus::Degraded`] status, never a hang.
//! Only when *every* shard fails does the query error.

use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use geotext::ObjectId;
use semask::{EngineError, LatencyBreakdown, QueryOutcome, SemaSkEngine, SemaSkQuery};
use semask_serve::api::{Request, Response, ServeStatus};
use vecdb::{merge_top_k, ScoredPoint, ShardSpec};

use crate::proto::{self, FrameKind, ShardQuery, ShardReply};
use crate::server::{NetHandler, Reply};

/// Connection and retry policy for shard calls.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// TCP connect budget per attempt.
    pub connect_timeout: Duration,
    /// Floor for the per-shard read timeout.
    pub read_timeout: Duration,
    /// Retries after the first failed attempt (total attempts =
    /// `retries + 1`).
    pub retries: usize,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub backoff: Duration,
    /// When the plan carries per-shard predicted costs, the read
    /// timeout for shard `i` stretches to
    /// `max(read_timeout, shard_us[i] × cost_timeout_factor)` — the
    /// calibrated per-(strategy, shard) scales price the wait, so a
    /// known-slow shard is not misread as down.
    pub cost_timeout_factor: f64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(2),
            retries: 2,
            backoff: Duration::from_millis(50),
            cost_timeout_factor: 50.0,
        }
    }
}

/// A routed answer plus its degradation record.
#[derive(Debug)]
pub struct RoutedOutcome {
    /// The merged, refined answer (partial when `degraded`).
    pub outcome: QueryOutcome,
    /// True when at least one shard's slice is missing from the merge.
    pub degraded: bool,
    /// One entry per failed shard: `"shard {i}: {error}"`.
    pub shard_errors: Vec<String>,
}

/// Connections cached per peer. Pipelined client requests route on
/// their own threads, so concurrent queries hitting the same shard
/// would serialize head-to-tail on a single cached stream; a small
/// pool lets them exchange in parallel without per-call dialing.
const CONNS_PER_PEER: usize = 3;

struct Peer {
    addr: String,
    /// Small pool of cached connections. Each slot holds one stream,
    /// dropped (and re-dialed on next use) on any error so a stale
    /// reply can never be matched to a later request on that stream.
    conns: Vec<Mutex<Option<TcpStream>>>,
    /// Round-robin cursor over `conns`, so load spreads across slots.
    rr: AtomicUsize,
    /// Correlation ids, shared across the pool (unique per peer).
    corr: AtomicU64,
}

impl Peer {
    fn new(addr: String) -> Self {
        Self {
            addr,
            conns: (0..CONNS_PER_PEER).map(|_| Mutex::new(None)).collect(),
            rr: AtomicUsize::new(0),
            corr: AtomicU64::new(1),
        }
    }

    /// Claims a connection slot: first uncontended slot scanning from
    /// the round-robin cursor; if every slot is mid-exchange, blocks on
    /// the cursor's slot (bounded by the exchange's read timeout).
    fn claim(&self) -> MutexGuard<'_, Option<TcpStream>> {
        let start = self.rr.fetch_add(1, Ordering::Relaxed);
        let n = self.conns.len();
        for i in 0..n {
            if let Ok(guard) = self.conns[(start + i) % n].try_lock() {
                return guard;
            }
        }
        self.conns[start % n]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Stretches the filtering stage across shard server processes.
pub struct ShardRouter {
    engine: Arc<SemaSkEngine>,
    peers: Vec<Peer>,
    config: RouterConfig,
}

impl ShardRouter {
    /// Creates a router over `peer_addrs` (one address per shard, in
    /// shard order). The peer count must match the engine planner's
    /// shard count — a mismatched topology would silently drop slices.
    ///
    /// # Errors
    /// [`EngineError::Remote`] when the topology does not match.
    pub fn new(
        engine: Arc<SemaSkEngine>,
        peer_addrs: Vec<String>,
        config: RouterConfig,
    ) -> Result<Self, EngineError> {
        let shard_count = engine.prepared().planner.shard_count();
        if peer_addrs.len() != shard_count {
            return Err(EngineError::Remote {
                message: format!(
                    "router has {} peers but the planner fans out over {shard_count} shards",
                    peer_addrs.len()
                ),
            });
        }
        let peers = peer_addrs.into_iter().map(Peer::new).collect();
        Ok(Self {
            engine,
            peers,
            config,
        })
    }

    /// The engine the router plans and refines with.
    #[must_use]
    pub fn engine(&self) -> &Arc<SemaSkEngine> {
        &self.engine
    }

    /// Answers one query through the shard fabric (see the module docs
    /// for the parity and degradation contracts).
    ///
    /// # Errors
    /// [`EngineError::Remote`] when every shard failed; local engine
    /// errors from planning or refinement.
    pub fn route_query(&self, q: &SemaSkQuery) -> Result<RoutedOutcome, EngineError> {
        let config = self.engine.config();
        let planner = &self.engine.prepared().planner;
        let plan = planner.plan_query(&q.range, q.keywords.as_deref(), config.k, config.ef);

        if plan.keyword_aware {
            // Keyword-aware execution scores among a *global* candidate
            // id list; slicing it per shard would change tie-breaks.
            // Execute locally — correct, just not distributed.
            return self.engine.query(q).map(|outcome| RoutedOutcome {
                outcome,
                degraded: false,
                shard_errors: Vec::new(),
            });
        }

        let shards = self.peers.len();
        let t0 = Instant::now();
        let slices: Vec<Result<Vec<ScoredPoint>, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|shard| {
                    let spec =
                        ShardSpec::new(shards as u32, shard as u32).expect("shard index in range");
                    let shard_query = ShardQuery {
                        text: q.text.clone(),
                        range: q.range,
                        k: config.k as u32,
                        ef: config.ef.map(|ef| ef as u32),
                        strategy: plan.chosen,
                        spec,
                    };
                    let timeout = self.shard_timeout(plan.shard_us.get(shard).copied());
                    scope.spawn(move || self.call_shard(shard, &shard_query, timeout))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err("shard call panicked".to_owned()))
                })
                .collect()
        });

        let mut per_shard = Vec::with_capacity(shards);
        let mut shard_errors = Vec::new();
        for (shard, slice) in slices.into_iter().enumerate() {
            match slice {
                Ok(hits) => per_shard.push(hits),
                Err(e) => {
                    // Keep the slice's position so merge bookkeeping
                    // stays aligned with shard indexes.
                    per_shard.push(Vec::new());
                    shard_errors.push(format!("shard {shard}: {e}"));
                }
            }
        }
        if shard_errors.len() == shards {
            return Err(EngineError::Remote {
                message: format!("all shards failed: {}", shard_errors.join("; ")),
            });
        }
        let (hits, contributed) = merge_top_k(&per_shard, config.k);
        let filtering_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let latency = LatencyBreakdown {
            filtering_ms,
            retrieval_ms: filtering_ms,
            refinement_ms: 0.0,
            filter_strategy: Some(plan.chosen),
            estimated_selectivity: plan.fraction,
            predicted_cost_us: plan.predicted_us,
            runner_up: plan.runner_up,
            cost_model_version: plan.model_version,
            shard_candidates: contributed,
            shard_predicted_us: plan.shard_us.clone(),
        };
        let candidates: Vec<(ObjectId, f32)> = hits
            .iter()
            .map(|h| (ObjectId(h.id as u32), h.score))
            .collect();
        let outcome = self
            .engine
            .refine_candidates(&q.text, candidates, latency)?;
        Ok(RoutedOutcome {
            outcome,
            degraded: !shard_errors.is_empty(),
            shard_errors,
        })
    }

    fn shard_timeout(&self, predicted_us: Option<f64>) -> Duration {
        let base = self.config.read_timeout;
        match predicted_us {
            Some(us) if us.is_finite() && us > 0.0 => {
                let priced = Duration::from_micros((us * self.config.cost_timeout_factor) as u64);
                base.max(priced)
            }
            _ => base,
        }
    }

    /// One shard call with the bounded retry/backoff budget.
    fn call_shard(
        &self,
        shard: usize,
        query: &ShardQuery,
        timeout: Duration,
    ) -> Result<Vec<ScoredPoint>, String> {
        let peer = &self.peers[shard];
        let mut delay = self.config.backoff;
        let mut last_error = String::new();
        for attempt in 0..=self.config.retries {
            match self.call_once(peer, query, timeout) {
                Ok(hits) => return Ok(hits),
                Err(e) => {
                    last_error = e;
                    if attempt < self.config.retries {
                        std::thread::sleep(delay);
                        delay = delay.saturating_mul(2);
                    }
                }
            }
        }
        Err(last_error)
    }

    fn call_once(
        &self,
        peer: &Peer,
        query: &ShardQuery,
        timeout: Duration,
    ) -> Result<Vec<ScoredPoint>, String> {
        let mut guard = peer.claim();
        if guard.is_none() {
            *guard = Some(self.dial(&peer.addr)?);
        }
        let stream = guard.as_mut().expect("dialed above");
        let corr = peer.corr.fetch_add(1, Ordering::Relaxed);
        let exchanged = Self::exchange(stream, corr, query, timeout);
        if exchanged.is_err() {
            // Drop the connection on any failure: a late reply on a
            // reused stream could otherwise be matched to the next
            // request on this slot. The next use re-dials.
            *guard = None;
        }
        exchanged
    }

    fn dial(&self, addr: &str) -> Result<TcpStream, String> {
        let resolved = addr
            .to_socket_addrs()
            .map_err(|e| format!("resolve {addr}: {e}"))?
            .next()
            .ok_or_else(|| format!("resolve {addr}: no addresses"))?;
        let stream = TcpStream::connect_timeout(&resolved, self.config.connect_timeout)
            .map_err(|e| format!("connect {addr}: {e}"))?;
        stream
            .set_nodelay(true)
            .map_err(|e| format!("configure {addr}: {e}"))?;
        Ok(stream)
    }

    fn exchange(
        stream: &mut TcpStream,
        corr: u64,
        query: &ShardQuery,
        timeout: Duration,
    ) -> Result<Vec<ScoredPoint>, String> {
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| format!("set timeout: {e}"))?;
        proto::write_frame(
            stream,
            FrameKind::ShardQuery,
            corr,
            &proto::encode_shard_query(query),
        )
        .map_err(|e| format!("send: {e}"))?;
        let frame = proto::read_frame(stream).map_err(|e| format!("recv: {e}"))?;
        if frame.kind != FrameKind::ShardReply || frame.corr != corr {
            return Err("out-of-protocol reply".to_owned());
        }
        let ShardReply { status, hits } =
            proto::decode_shard_reply(&frame.payload).map_err(|e| format!("decode: {e}"))?;
        match status {
            ServeStatus::Ok => Ok(hits),
            other => Err(format!("shard status: {other}")),
        }
    }
}

/// [`NetHandler`] that serves client requests through a [`ShardRouter`].
/// Each request routes on its own thread (deferred), so pipelined
/// requests fan out concurrently, bounded by the server's per-connection
/// in-flight cap.
pub struct RouterHandler {
    router: Arc<ShardRouter>,
}

impl RouterHandler {
    /// Wraps a router for serving.
    #[must_use]
    pub fn new(router: Arc<ShardRouter>) -> Self {
        Self { router }
    }
}

impl NetHandler for RouterHandler {
    fn handle(&self, request: Request) -> Reply {
        let router = Arc::clone(&self.router);
        let id = request.id;
        let worker = std::thread::spawn(move || route_to_response(&router, &request));
        Reply::Deferred(Box::new(move || {
            worker
                .join()
                .unwrap_or_else(|_| Response::failed(id, ServeStatus::BatchPanicked))
        }))
    }
}

fn route_to_response(router: &ShardRouter, request: &Request) -> Response {
    match router.route_query(&request.query) {
        Ok(routed) if routed.degraded => {
            Response::degraded(request.id, routed.outcome, routed.shard_errors.join("; "))
        }
        Ok(routed) => Response::ok(request.id, routed.outcome),
        Err(e) => Response::failed(
            request.id,
            ServeStatus::EngineError {
                message: e.to_string(),
            },
        ),
    }
}

/// [`NetHandler`] for a shard server: answers shard-slice queries with
/// [`semask::QueryPlanner::execute_shard_slice`] and (for operational
/// convenience) full client queries with the local engine.
pub struct ShardEngineHandler {
    engine: Arc<SemaSkEngine>,
    spec: ShardSpec,
}

impl ShardEngineHandler {
    /// A handler answering for `spec`'s slice of the id space.
    #[must_use]
    pub fn new(engine: Arc<SemaSkEngine>, spec: ShardSpec) -> Self {
        Self { engine, spec }
    }
}

impl NetHandler for ShardEngineHandler {
    fn handle(&self, request: Request) -> Reply {
        let engine = Arc::clone(&self.engine);
        Reply::Deferred(Box::new(move || match engine.query(&request.query) {
            Ok(outcome) => Response::ok(request.id, outcome),
            Err(e) => Response::failed(
                request.id,
                ServeStatus::EngineError {
                    message: e.to_string(),
                },
            ),
        }))
    }

    fn handle_shard(&self, query: ShardQuery) -> ShardReply {
        if query.spec != self.spec {
            return ShardReply {
                status: ServeStatus::EngineError {
                    message: format!(
                        "topology mismatch: this server answers shard {}/{} but was asked for {}/{}",
                        self.spec.shard, self.spec.shards, query.spec.shard, query.spec.shards
                    ),
                },
                hits: Vec::new(),
            };
        }
        use embed::Embedder;
        let prepared = self.engine.prepared();
        let query_vec = prepared.embedder.embed(&query.text);
        match prepared.planner.execute_shard_slice(
            query.strategy,
            &query_vec,
            &query.range,
            query.k as usize,
            query.ef.map(|ef| ef as usize),
            query.spec.shard as usize,
        ) {
            Ok(hits) => ShardReply {
                status: ServeStatus::Ok,
                hits,
            },
            Err(e) => ShardReply {
                status: ServeStatus::EngineError {
                    message: e.to_string(),
                },
                hits: Vec::new(),
            },
        }
    }
}

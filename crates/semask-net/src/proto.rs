//! Length-prefixed binary wire protocol.
//!
//! Every message is one *frame*:
//!
//! ```text
//! ┌────────┬─────────┬──────┬──────────────────┬─────────────┬─────────┐
//! │ magic  │ version │ kind │ correlation id   │ payload len │ payload │
//! │ u16 LE │ u8      │ u8   │ u64 LE           │ u32 LE      │ bytes   │
//! └────────┴─────────┴──────┴──────────────────┴─────────────┴─────────┘
//!   0x534B    1                                  ≤ 16 MiB
//! ```
//!
//! The 16-byte header is fixed; the payload encoding depends on
//! [`FrameKind`]. All integers are little-endian, floats travel as raw
//! IEEE-754 bits (`to_bits`/`from_bits`, so answers survive the wire
//! bit-exactly), strings are UTF-8 with a `u32` length prefix, and
//! `Option<T>` is a `u8` tag (0 = none, 1 = some) followed by `T`.
//!
//! The correlation id in the header echoes the request id: responses may
//! arrive pipelined and the client matches them back by id. Malformed
//! frames are protocol violations — the peer drops the connection rather
//! than guessing at resynchronization.

use std::fmt;
use std::io::{Read, Write};

use geotext::BoundingBox;
use semask::{
    LatencyBreakdown, QueryOutcome, RankedPoi, RetrievalStrategy, SemaSkQuery, StrategyCost,
};
use semask_serve::api::{CacheStatus, Priority, Request, Response, ServeStatus};
use vecdb::{ScoredPoint, ShardSpec};

/// Frame magic: `"SK"` little-endian.
pub const MAGIC: u16 = 0x4B53;
/// Protocol version carried in every header.
pub const VERSION: u8 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 16;
/// Upper bound on a single frame's payload; anything larger is rejected
/// before allocation (a garbage length prefix must not OOM the server).
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// What the payload of a frame contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: a [`Request`] envelope.
    Submit = 1,
    /// Server → client: the [`Response`] envelope for a [`FrameKind::Submit`].
    SubmitReply = 2,
    /// Router → shard server: one shard's slice of a planned query.
    ShardQuery = 3,
    /// Shard server → router: the slice result.
    ShardReply = 4,
}

impl FrameKind {
    /// Decodes the header byte.
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(Self::Submit),
            2 => Some(Self::SubmitReply),
            3 => Some(Self::ShardQuery),
            4 => Some(Self::ShardReply),
            _ => None,
        }
    }
}

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying socket failed (includes read timeouts: an
    /// `ErrorKind::WouldBlock`/`TimedOut` here means the peer went
    /// quiet, not that the stream is corrupt).
    Io(std::io::Error),
    /// The first two header bytes were not [`MAGIC`].
    BadMagic(u16),
    /// The peer speaks a protocol version we do not.
    BadVersion(u8),
    /// Unknown [`FrameKind`] byte.
    BadKind(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversize(u32),
    /// The payload bytes did not decode as the kind's envelope.
    Malformed(&'static str),
}

impl ProtoError {
    /// True when the error is a read timeout rather than a dead or
    /// corrupt stream — callers with retry budgets treat these
    /// differently from protocol violations.
    #[must_use]
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            Self::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io: {e}"),
            Self::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            Self::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            Self::BadKind(k) => write!(f, "unknown frame kind {k}"),
            Self::Oversize(n) => write!(f, "payload of {n} bytes exceeds the {MAX_PAYLOAD} cap"),
            Self::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// One decoded frame: kind, correlation id, and the raw payload bytes.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Payload discriminator.
    pub kind: FrameKind,
    /// Echoed request id (pipelined responses are matched by this).
    pub corr: u64,
    /// Envelope bytes; decode with the kind-matching `decode_*`.
    pub payload: Vec<u8>,
}

/// Appends one frame (header + payload) to `buf` without writing it
/// anywhere. The building block behind [`write_frame`] and burst
/// senders that pack several frames into one `write_all` (e.g.
/// [`crate::client::NetClient::send_requests`]) so a whole pipeline
/// burst leaves in a single syscall instead of one per request.
///
/// # Errors
/// [`ProtoError::Oversize`] when the payload exceeds the frame limit;
/// `buf` is untouched in that case.
pub fn encode_frame_into(
    buf: &mut Vec<u8>,
    kind: FrameKind,
    corr: u64,
    payload: &[u8],
) -> Result<(), ProtoError> {
    if payload.len() as u64 > u64::from(MAX_PAYLOAD) {
        return Err(ProtoError::Oversize(u32::MAX));
    }
    buf.reserve(HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.push(VERSION);
    buf.push(kind as u8);
    buf.extend_from_slice(&corr.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    Ok(())
}

/// Writes one frame (header + payload) as a single buffered write so a
/// concurrent writer on a cloned socket can never interleave mid-frame.
pub fn write_frame(
    w: &mut impl Write,
    kind: FrameKind,
    corr: u64,
    payload: &[u8],
) -> Result<(), ProtoError> {
    let mut buf = Vec::new();
    encode_frame_into(&mut buf, kind, corr, payload)?;
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Reads and validates one frame. Blocks per the stream's read timeout;
/// a timeout surfaces as [`ProtoError::Io`] with `is_timeout() == true`.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, ProtoError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let magic = u16::from_le_bytes([header[0], header[1]]);
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    if header[2] != VERSION {
        return Err(ProtoError::BadVersion(header[2]));
    }
    let kind = FrameKind::from_code(header[3]).ok_or(ProtoError::BadKind(header[3]))?;
    let corr = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return Err(ProtoError::Oversize(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Frame {
        kind,
        corr,
        payload,
    })
}

// ---------------------------------------------------------------------
// Primitive put/take helpers. `Wire` appends to a Vec; `Cursor` walks a
// slice and fails loudly (never panics) on truncated input.
// ---------------------------------------------------------------------

#[derive(Default)]
struct Wire(Vec<u8>);

impl Wire {
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn put_u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
    fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn put_opt<T: ?Sized>(&mut self, v: Option<&T>, encode: impl FnOnce(&mut Self, &T)) {
        match v {
            None => self.put_u8(0),
            Some(inner) => {
                self.put_u8(1);
                encode(self, inner);
            }
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ProtoError::Malformed("truncated payload"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn take_u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }
    fn take_u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn take_u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn take_f32(&mut self) -> Result<f32, ProtoError> {
        Ok(f32::from_bits(self.take_u32()?))
    }
    fn take_f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.take_u64()?))
    }
    fn take_str(&mut self) -> Result<String, ProtoError> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::Malformed("non-UTF-8 string"))
    }
    fn take_opt<T>(
        &mut self,
        decode: impl FnOnce(&mut Self) -> Result<T, ProtoError>,
    ) -> Result<Option<T>, ProtoError> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(decode(self)?)),
            _ => Err(ProtoError::Malformed("bad option tag")),
        }
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Malformed("trailing bytes after payload"))
        }
    }
}

/// Wire code of a retrieval strategy (stable across releases; extend,
/// never renumber).
#[must_use]
pub fn strategy_code(strategy: RetrievalStrategy) -> u8 {
    match strategy {
        RetrievalStrategy::ExactScan => 0,
        RetrievalStrategy::FilteredHnsw => 1,
        RetrievalStrategy::GridPrefilter => 2,
        RetrievalStrategy::IrTree => 3,
    }
}

/// Inverse of [`strategy_code`].
#[must_use]
pub fn strategy_from_code(code: u8) -> Option<RetrievalStrategy> {
    match code {
        0 => Some(RetrievalStrategy::ExactScan),
        1 => Some(RetrievalStrategy::FilteredHnsw),
        2 => Some(RetrievalStrategy::GridPrefilter),
        3 => Some(RetrievalStrategy::IrTree),
        _ => None,
    }
}

fn put_range(w: &mut Wire, range: &BoundingBox) {
    w.put_f64(range.min_lat);
    w.put_f64(range.min_lon);
    w.put_f64(range.max_lat);
    w.put_f64(range.max_lon);
}

fn take_range(c: &mut Cursor<'_>) -> Result<BoundingBox, ProtoError> {
    Ok(BoundingBox {
        min_lat: c.take_f64()?,
        min_lon: c.take_f64()?,
        max_lat: c.take_f64()?,
        max_lon: c.take_f64()?,
    })
}

fn put_query(w: &mut Wire, q: &SemaSkQuery) {
    put_range(w, &q.range);
    w.put_str(&q.text);
    w.put_opt(q.keywords.as_deref(), |w, kw| w.put_str(kw));
}

fn take_query(c: &mut Cursor<'_>) -> Result<SemaSkQuery, ProtoError> {
    Ok(SemaSkQuery {
        range: take_range(c)?,
        text: c.take_str()?,
        keywords: c.take_opt(Cursor::take_str)?,
    })
}

fn put_status(w: &mut Wire, status: &ServeStatus) {
    w.put_u8(status.code());
    w.put_str(status.message());
}

fn take_status(c: &mut Cursor<'_>) -> Result<ServeStatus, ProtoError> {
    let code = c.take_u8()?;
    let message = c.take_str()?;
    ServeStatus::from_code(code, message).ok_or(ProtoError::Malformed("unknown status code"))
}

fn put_strategy_cost(w: &mut Wire, cost: &StrategyCost) {
    w.put_u8(strategy_code(cost.strategy));
    w.put_f64(cost.predicted_us);
    w.put_u8(u8::from(cost.viable));
}

fn take_strategy_cost(c: &mut Cursor<'_>) -> Result<StrategyCost, ProtoError> {
    let strategy =
        strategy_from_code(c.take_u8()?).ok_or(ProtoError::Malformed("unknown strategy code"))?;
    let predicted_us = c.take_f64()?;
    let viable = match c.take_u8()? {
        0 => false,
        1 => true,
        _ => return Err(ProtoError::Malformed("bad bool")),
    };
    Ok(StrategyCost {
        strategy,
        predicted_us,
        viable,
    })
}

fn put_latency(w: &mut Wire, l: &LatencyBreakdown) {
    w.put_f64(l.filtering_ms);
    w.put_f64(l.retrieval_ms);
    w.put_f64(l.refinement_ms);
    w.put_opt(l.filter_strategy.as_ref(), |w, s| {
        w.put_u8(strategy_code(*s));
    });
    w.put_f64(l.estimated_selectivity);
    w.put_f64(l.predicted_cost_us);
    w.put_opt(l.runner_up.as_ref(), put_strategy_cost);
    w.put_u64(l.cost_model_version);
    w.put_u32(l.shard_candidates.len() as u32);
    for &n in &l.shard_candidates {
        w.put_u64(n as u64);
    }
    w.put_u32(l.shard_predicted_us.len() as u32);
    for &us in &l.shard_predicted_us {
        w.put_f64(us);
    }
}

fn take_latency(c: &mut Cursor<'_>) -> Result<LatencyBreakdown, ProtoError> {
    let filtering_ms = c.take_f64()?;
    let retrieval_ms = c.take_f64()?;
    let refinement_ms = c.take_f64()?;
    let filter_strategy = c.take_opt(|c| {
        strategy_from_code(c.take_u8()?).ok_or(ProtoError::Malformed("unknown strategy code"))
    })?;
    let estimated_selectivity = c.take_f64()?;
    let predicted_cost_us = c.take_f64()?;
    let runner_up = c.take_opt(take_strategy_cost)?;
    let cost_model_version = c.take_u64()?;
    let n = c.take_u32()? as usize;
    let mut shard_candidates = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        shard_candidates.push(c.take_u64()? as usize);
    }
    let n = c.take_u32()? as usize;
    let mut shard_predicted_us = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        shard_predicted_us.push(c.take_f64()?);
    }
    Ok(LatencyBreakdown {
        filtering_ms,
        retrieval_ms,
        refinement_ms,
        filter_strategy,
        estimated_selectivity,
        predicted_cost_us,
        runner_up,
        cost_model_version,
        shard_candidates,
        shard_predicted_us,
    })
}

fn put_outcome(w: &mut Wire, o: &QueryOutcome) {
    w.put_u32(o.pois.len() as u32);
    for p in &o.pois {
        w.put_u32(p.id.0);
        w.put_str(&p.name);
        w.put_f32(p.embed_score);
        w.put_u8(u8::from(p.recommended));
        w.put_str(&p.reason);
    }
    put_latency(w, &o.latency);
}

fn take_outcome(c: &mut Cursor<'_>) -> Result<QueryOutcome, ProtoError> {
    let n = c.take_u32()? as usize;
    let mut pois = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let id = geotext::ObjectId(c.take_u32()?);
        let name = c.take_str()?;
        let embed_score = c.take_f32()?;
        let recommended = match c.take_u8()? {
            0 => false,
            1 => true,
            _ => return Err(ProtoError::Malformed("bad bool")),
        };
        let reason = c.take_str()?;
        pois.push(RankedPoi {
            id,
            name,
            embed_score,
            recommended,
            reason,
        });
    }
    let latency = take_latency(c)?;
    Ok(QueryOutcome { pois, latency })
}

/// Encodes a [`Request`] envelope ([`FrameKind::Submit`] payload).
#[must_use]
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut w = Wire::default();
    w.put_u64(request.id);
    put_query(&mut w, &request.query);
    w.put_u8(request.priority.code());
    w.put_opt(request.deadline.as_ref(), |w, d| {
        w.put_u64(d.as_micros() as u64);
    });
    w.0
}

/// Decodes a [`FrameKind::Submit`] payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let mut c = Cursor::new(payload);
    let id = c.take_u64()?;
    let query = take_query(&mut c)?;
    let priority =
        Priority::from_code(c.take_u8()?).ok_or(ProtoError::Malformed("unknown priority code"))?;
    let deadline = c.take_opt(|c| Ok(std::time::Duration::from_micros(c.take_u64()?)))?;
    c.finish()?;
    let mut request = Request::new(id, query).with_priority(priority);
    if let Some(d) = deadline {
        request = request.with_deadline(d);
    }
    Ok(request)
}

/// Encodes a [`Response`] envelope ([`FrameKind::SubmitReply`] payload).
#[must_use]
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut w = Wire::default();
    w.put_u64(response.id);
    put_status(&mut w, &response.status);
    w.put_opt(response.outcome.as_ref(), put_outcome);
    w.put_u8(response.cached.code());
    w.0
}

/// Decodes a [`FrameKind::SubmitReply`] payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let mut c = Cursor::new(payload);
    let id = c.take_u64()?;
    let status = take_status(&mut c)?;
    let outcome = c.take_opt(take_outcome)?;
    let cached = CacheStatus::from_code(c.take_u8()?)
        .ok_or(ProtoError::Malformed("unknown cache-status code"))?;
    c.finish()?;
    Ok(Response {
        id,
        outcome,
        status,
        cached,
    })
}

/// One shard's slice of a planned query. The router plans once, then
/// ships the *chosen strategy* so every shard executes the same plan;
/// the shard embeds the text itself (the embedder is deterministic, so
/// no vectors travel on the wire).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardQuery {
    /// Query text; the shard embeds it locally.
    pub text: String,
    /// Spatial constraint.
    pub range: BoundingBox,
    /// Results to return from this slice (the global `k`; the router
    /// merges slices with the k-way merge).
    pub k: u32,
    /// HNSW beam width override, when the plan pinned one.
    pub ef: Option<u32>,
    /// The strategy the router's planner chose — shards do not re-plan.
    pub strategy: RetrievalStrategy,
    /// Which slice of the id space this shard must answer for; the
    /// shard rejects mismatched topology rather than silently returning
    /// a wrong slice.
    pub spec: ShardSpec,
}

/// Encodes a [`ShardQuery`] ([`FrameKind::ShardQuery`] payload).
#[must_use]
pub fn encode_shard_query(q: &ShardQuery) -> Vec<u8> {
    let mut w = Wire::default();
    w.put_str(&q.text);
    put_range(&mut w, &q.range);
    w.put_u32(q.k);
    w.put_opt(q.ef.as_ref(), |w, &ef| w.put_u32(ef));
    w.put_u8(strategy_code(q.strategy));
    w.put_u32(q.spec.shards);
    w.put_u32(q.spec.shard);
    w.0
}

/// Decodes a [`FrameKind::ShardQuery`] payload.
pub fn decode_shard_query(payload: &[u8]) -> Result<ShardQuery, ProtoError> {
    let mut c = Cursor::new(payload);
    let text = c.take_str()?;
    let range = take_range(&mut c)?;
    let k = c.take_u32()?;
    let ef = c.take_opt(Cursor::take_u32)?;
    let strategy =
        strategy_from_code(c.take_u8()?).ok_or(ProtoError::Malformed("unknown strategy code"))?;
    let shards = c.take_u32()?;
    let shard = c.take_u32()?;
    c.finish()?;
    let spec = ShardSpec::new(shards, shard).ok_or(ProtoError::Malformed("invalid shard spec"))?;
    Ok(ShardQuery {
        text,
        range,
        k,
        ef,
        strategy,
        spec,
    })
}

/// A shard's slice result ([`FrameKind::ShardReply`] payload).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReply {
    /// `Ok` on success; any other status carries the shard-side error.
    pub status: ServeStatus,
    /// Slice hits, best-first, at most `k`. Empty on error.
    pub hits: Vec<ScoredPoint>,
}

/// Encodes a [`ShardReply`].
#[must_use]
pub fn encode_shard_reply(reply: &ShardReply) -> Vec<u8> {
    let mut w = Wire::default();
    put_status(&mut w, &reply.status);
    w.put_u32(reply.hits.len() as u32);
    for hit in &reply.hits {
        w.put_u64(hit.id);
        w.put_f32(hit.score);
    }
    w.0
}

/// Decodes a [`FrameKind::ShardReply`] payload.
pub fn decode_shard_reply(payload: &[u8]) -> Result<ShardReply, ProtoError> {
    let mut c = Cursor::new(payload);
    let status = take_status(&mut c)?;
    let n = c.take_u32()? as usize;
    let mut hits = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let id = c.take_u64()?;
        let score = c.take_f32()?;
        hits.push(ScoredPoint { id, score });
    }
    c.finish()?;
    Ok(ShardReply { status, hits })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request::new(
            77,
            SemaSkQuery {
                range: BoundingBox {
                    min_lat: 1.25,
                    min_lon: -2.5,
                    max_lat: 3.0,
                    max_lon: 4.125,
                },
                text: "quiet coffee".into(),
                keywords: Some("wifi".into()),
            },
        )
        .with_priority(Priority::High)
        .with_deadline(std::time::Duration::from_millis(250))
    }

    #[test]
    fn frame_round_trips_through_a_byte_stream() {
        let payload = encode_request(&sample_request());
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Submit, 77, &payload).expect("write");
        assert_eq!(buf.len(), HEADER_LEN + payload.len());
        let frame = read_frame(&mut buf.as_slice()).expect("read");
        assert_eq!(frame.kind, FrameKind::Submit);
        assert_eq!(frame.corr, 77);
        let decoded = decode_request(&frame.payload).expect("decode");
        assert_eq!(decoded.id, 77);
        assert_eq!(decoded.query.text, "quiet coffee");
        assert_eq!(decoded.priority, Priority::High);
    }

    #[test]
    fn header_validation_rejects_garbage() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Submit, 1, b"x").expect("write");
        let mut bad_magic = buf.clone();
        bad_magic[0] = 0;
        assert!(matches!(
            read_frame(&mut bad_magic.as_slice()),
            Err(ProtoError::BadMagic(_))
        ));
        let mut bad_version = buf.clone();
        bad_version[2] = 9;
        assert!(matches!(
            read_frame(&mut bad_version.as_slice()),
            Err(ProtoError::BadVersion(9))
        ));
        let mut bad_kind = buf.clone();
        bad_kind[3] = 200;
        assert!(matches!(
            read_frame(&mut bad_kind.as_slice()),
            Err(ProtoError::BadKind(200))
        ));
        let mut oversize = buf;
        oversize[12..16].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut oversize.as_slice()),
            Err(ProtoError::Oversize(_))
        ));
    }

    #[test]
    fn truncated_payloads_are_malformed_not_panics() {
        let payload = encode_request(&sample_request());
        for cut in 0..payload.len() {
            assert!(
                decode_request(&payload[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn shard_envelopes_round_trip() {
        let q = ShardQuery {
            text: "ramen".into(),
            range: BoundingBox {
                min_lat: 0.0,
                min_lon: 0.0,
                max_lat: 1.0,
                max_lon: 1.0,
            },
            k: 10,
            ef: Some(64),
            strategy: RetrievalStrategy::GridPrefilter,
            spec: ShardSpec::new(4, 2).expect("valid spec"),
        };
        let decoded = decode_shard_query(&encode_shard_query(&q)).expect("decode");
        assert_eq!(decoded, q);

        let reply = ShardReply {
            status: ServeStatus::Ok,
            hits: vec![
                ScoredPoint { id: 9, score: 0.75 },
                ScoredPoint { id: 4, score: 0.5 },
            ],
        };
        let decoded = decode_shard_reply(&encode_shard_reply(&reply)).expect("decode");
        assert_eq!(decoded, reply);
    }
}

//! # concepts — the semantic world model
//!
//! The reproduction replaces three proprietary dependencies (Yelp data,
//! OpenAI embeddings, OpenAI chat models) with simulations that must agree
//! on what language *means*. This crate is that shared ground: an ontology
//! of semantic concepts (cuisines, amenities, ambience, services, …), each
//! with
//!
//! - **surface terms** — words that literally name the concept (what
//!   keyword matching can find), and
//! - **paraphrases** — phrases that imply the concept without naming it
//!   (what only semantic understanding can find; the paper's "a variety of
//!   options" example).
//!
//! The [`ConceptDetector`] maps text to concept activations. Run at
//! perfect fidelity it defines *ground truth* (what a careful human
//! annotator would say, standing in for the paper's manual answer-set
//! inspection). Run through a [`FidelityProfile`] it simulates an
//! imperfect model: the embedding model detects paraphrases less reliably
//! than the big LLMs, which is exactly the gap SemaSK's refinement step
//! exploits.
//!
//! Detection noise is **deterministic**: whether a given model spots a
//! given concept in a given text is a pure function of (text, concept,
//! model salt), so data preparation and query processing see a consistent
//! world and every experiment is reproducible.

#![warn(missing_docs)]

pub mod concept;
pub mod detect;
pub mod hash;
pub mod ontology;

pub use concept::{Concept, ConceptId, Domain};
pub use detect::{ConceptDetector, Detection, FidelityProfile};
pub use ontology::Ontology;

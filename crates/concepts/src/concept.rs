//! Concept definitions.

use serde::{Deserialize, Serialize};

/// Dense id of a concept within an [`crate::Ontology`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ConceptId(pub u16);

impl ConceptId {
    /// The id as a usize, for slice indexing.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Broad semantic domain of a concept; the data generator uses domains to
/// compose plausible POIs (a ramen shop gets food and service concepts,
/// not oil changes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Domain {
    /// National or regional cuisines.
    Cuisine,
    /// Specific dishes and food items.
    FoodItem,
    /// Drinks and beverage programs.
    Drink,
    /// Atmosphere and setting.
    Ambience,
    /// Things to do at the venue.
    Activity,
    /// Service qualities and policies.
    Service,
    /// Physical amenities.
    Amenity,
    /// Dietary accommodations.
    Dietary,
    /// Non-food retail and services.
    Retail,
    /// Automotive services.
    Automotive,
    /// Health, beauty, and wellness.
    Wellness,
    /// Lodging, culture, and recreation.
    Leisure,
}

/// One semantic concept.
#[derive(Debug, Clone, Serialize)]
pub struct Concept {
    /// Dense id.
    pub id: ConceptId,
    /// Stable kebab-case name, e.g. `live-sports-viewing`.
    pub name: &'static str,
    /// The concept's domain.
    pub domain: Domain,
    /// Phrases that literally name the concept. Keyword matching finds
    /// these.
    pub surface: &'static [&'static str],
    /// Phrases that imply the concept without naming it. Only semantic
    /// models find these.
    pub paraphrases: &'static [&'static str],
    /// Names of more general concepts this one implies (e.g. `espresso-
    /// drinks` implies `coffee-specialty`). Resolved to ids by the
    /// ontology.
    pub implies: &'static [&'static str],
}

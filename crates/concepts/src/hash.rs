//! Small deterministic hashing utilities (FNV-1a).
//!
//! Used wherever the simulators need noise that is a *pure function* of
//! its inputs — e.g. "does model M detect concept C in text T?" — so that
//! repeated runs, and different pipeline stages looking at the same text,
//! agree.

/// 64-bit FNV-1a hash of a byte string.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Mixes several u64s into one (xor-multiply-rotate chain).
#[must_use]
pub fn mix(values: &[u64]) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15u64;
    for &v in values {
        h ^= v;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h = h.rotate_left(31);
    }
    // Final avalanche.
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// Maps a hash to a uniform float in `[0, 1)`.
#[must_use]
pub fn unit_float(h: u64) -> f64 {
    // 53 mantissa bits for an unbiased uniform double.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_deterministic_and_distinguishes() {
        assert_eq!(fnv1a(b"hello"), fnv1a(b"hello"));
        assert_ne!(fnv1a(b"hello"), fnv1a(b"hellp"));
        assert_ne!(fnv1a(b""), fnv1a(b"a"));
    }

    #[test]
    fn mix_order_sensitive() {
        assert_ne!(mix(&[1, 2]), mix(&[2, 1]));
        assert_eq!(mix(&[1, 2, 3]), mix(&[1, 2, 3]));
    }

    #[test]
    fn unit_float_in_range() {
        for i in 0..1000u64 {
            let f = unit_float(mix(&[i]));
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_float_roughly_uniform() {
        let n = 10_000u64;
        let mean: f64 = (0..n).map(|i| unit_float(mix(&[i, 42]))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}

//! The built-in concept ontology.
//!
//! ~95 concepts across food, drink, ambience, activity, service, retail,
//! automotive, wellness, and leisure domains — wide enough to generate a
//! plausible Yelp-like city (restaurants are only part of Yelp; the
//! paper's own query-generation example is a Pep Boys auto shop).

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::concept::{Concept, ConceptId, Domain};

/// A resolved ontology: concepts plus implication closure.
#[derive(Debug)]
pub struct Ontology {
    concepts: Vec<Concept>,
    by_name: HashMap<&'static str, ConceptId>,
    /// `implied[i]` = ids implied by concept `i` (transitive, excluding
    /// `i` itself).
    implied: Vec<Vec<ConceptId>>,
}

impl Ontology {
    /// The shared built-in ontology.
    #[must_use]
    pub fn builtin() -> &'static Ontology {
        static ONTOLOGY: OnceLock<Ontology> = OnceLock::new();
        ONTOLOGY.get_or_init(|| Ontology::from_table(raw_concepts()))
    }

    fn from_table(table: Vec<RawConcept>) -> Self {
        let mut concepts = Vec::with_capacity(table.len());
        let mut by_name = HashMap::with_capacity(table.len());
        for (i, raw) in table.iter().enumerate() {
            let id = ConceptId(i as u16);
            by_name.insert(raw.name, id);
            concepts.push(Concept {
                id,
                name: raw.name,
                domain: raw.domain,
                surface: raw.surface,
                paraphrases: raw.paraphrases,
                implies: raw.implies,
            });
        }
        // Resolve transitive implication closure (the graph is a small DAG;
        // a simple fixpoint is fine).
        let direct: Vec<Vec<ConceptId>> = concepts
            .iter()
            .map(|c| {
                c.implies
                    .iter()
                    .map(|n| {
                        *by_name.get(n).unwrap_or_else(|| {
                            panic!("unknown implied concept `{n}` in `{}`", c.name)
                        })
                    })
                    .collect()
            })
            .collect();
        let mut implied: Vec<Vec<ConceptId>> = vec![Vec::new(); concepts.len()];
        for i in 0..concepts.len() {
            let mut seen = vec![false; concepts.len()];
            let mut stack: Vec<ConceptId> = direct[i].clone();
            while let Some(c) = stack.pop() {
                if !seen[c.index()] {
                    seen[c.index()] = true;
                    implied[i].push(c);
                    stack.extend(direct[c.index()].iter().copied());
                }
            }
            implied[i].sort();
        }
        Self {
            concepts,
            by_name,
            implied,
        }
    }

    /// Number of concepts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// Whether the ontology is empty (never true for the builtin).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// All concepts in id order.
    #[must_use]
    pub fn concepts(&self) -> &[Concept] {
        &self.concepts
    }

    /// Looks up a concept id by name.
    #[must_use]
    pub fn id(&self, name: &str) -> Option<ConceptId> {
        self.by_name.get(name).copied()
    }

    /// Looks up a concept id by name, panicking on unknown names.
    ///
    /// For internal wiring (datagen category tables) where a typo is a
    /// programming error.
    #[must_use]
    pub fn id_of(&self, name: &str) -> ConceptId {
        self.id(name)
            .unwrap_or_else(|| panic!("unknown concept name `{name}`"))
    }

    /// The concept for an id.
    #[must_use]
    pub fn concept(&self, id: ConceptId) -> &Concept {
        &self.concepts[id.index()]
    }

    /// Transitively implied (more general) concepts, excluding `id`.
    #[must_use]
    pub fn implied(&self, id: ConceptId) -> &[ConceptId] {
        &self.implied[id.index()]
    }

    /// Whether a POI holding `held` satisfies a required concept: it holds
    /// the concept itself or any concept that implies it.
    #[must_use]
    pub fn satisfies(&self, held: &[ConceptId], required: ConceptId) -> bool {
        held.iter()
            .any(|&h| h == required || self.implied(h).contains(&required))
    }

    /// Whether `held` satisfies *all* of `required`.
    #[must_use]
    pub fn satisfies_all(&self, held: &[ConceptId], required: &[ConceptId]) -> bool {
        required.iter().all(|&r| self.satisfies(held, r))
    }
}

struct RawConcept {
    name: &'static str,
    domain: Domain,
    surface: &'static [&'static str],
    paraphrases: &'static [&'static str],
    implies: &'static [&'static str],
}

fn c(
    name: &'static str,
    domain: Domain,
    surface: &'static [&'static str],
    paraphrases: &'static [&'static str],
    implies: &'static [&'static str],
) -> RawConcept {
    RawConcept {
        name,
        domain,
        surface,
        paraphrases,
        implies,
    }
}

#[rustfmt::skip]
fn raw_concepts() -> Vec<RawConcept> {
    use Domain::*;
    vec![
        // ---------------- Cuisines ----------------
        c("italian-cuisine", Cuisine,
            &["italian", "trattoria", "italian restaurant"],
            &["fresh pasta made in house", "nonna's recipes", "wood fired neapolitan pies", "burrata to die for"],
            &[]),
        c("mexican-cuisine", Cuisine,
            &["mexican", "taqueria", "mexican restaurant"],
            &["street corn and al pastor", "fresh salsa trio", "handmade tortillas", "margaritas with authentic flavor"],
            &[]),
        c("japanese-cuisine", Cuisine,
            &["japanese", "japanese restaurant", "izakaya"],
            &["omakase experience", "flavors straight from tokyo", "delicate umami in every bite"],
            &[]),
        c("chinese-cuisine", Cuisine,
            &["chinese", "chinese restaurant", "dim sum"],
            &["hand pulled noodles", "dumplings like in beijing", "pushcart brunch on weekends"],
            &[]),
        c("thai-cuisine", Cuisine,
            &["thai", "thai restaurant"],
            &["pad see ew done right", "proper bangkok heat levels", "fragrant lemongrass and basil"],
            &[]),
        c("indian-cuisine", Cuisine,
            &["indian", "indian restaurant"],
            &["naan fresh from the tandoor", "rich masala gravies", "thali platters worth sharing"],
            &[]),
        c("french-cuisine", Cuisine,
            &["french", "bistro", "french restaurant"],
            &["escargot and duck confit", "paris on a plate", "perfect creme brulee"],
            &[]),
        c("greek-cuisine", Cuisine,
            &["greek", "greek restaurant"],
            &["gyros carved fresh", "feta and olives on everything", "like a santorini taverna"],
            &[]),
        c("korean-cuisine", Cuisine,
            &["korean", "korean bbq", "korean restaurant"],
            &["banchan keeps coming", "grill at your table", "bulgogi and kimchi done properly"],
            &[]),
        c("vietnamese-cuisine", Cuisine,
            &["vietnamese", "vietnamese restaurant"],
            &["fragrant broth simmered overnight", "banh mi on crusty baguettes", "fresh herbs piled high"],
            &[]),
        c("american-diner", Cuisine,
            &["diner", "american food", "comfort food"],
            &["classic greasy spoon", "bottomless drip and big plates", "like grandma used to make"],
            &[]),
        c("bbq-smokehouse", Cuisine,
            &["bbq", "barbecue", "smokehouse"],
            &["low and slow brisket", "smoke ring on everything", "sauce slathered racks"],
            &[]),
        c("seafood-restaurant", Cuisine,
            &["seafood", "fish house", "seafood restaurant"],
            &["fresh off the boat", "shuck your own platter", "daily catch specials"],
            &[]),
        c("steakhouse", Cuisine,
            &["steakhouse", "steak house", "chophouse"],
            &["dry aged cuts", "cooked to a perfect medium rare", "special occasion carnivore spot"],
            &[]),
        c("mediterranean-cuisine", Cuisine,
            &["mediterranean", "middle eastern"],
            &["hummus and falafel plates", "shawarma carved to order", "olive oil drizzled everything"],
            &[]),

        // ---------------- Food items ----------------
        c("pizza", FoodItem,
            &["pizza", "pizzeria", "pizzas"],
            &["thin crust charred at the edges", "slices bigger than your head", "gooey cheese pull"],
            &[]),
        c("sushi", FoodItem,
            &["sushi", "sashimi", "sushi bar"],
            &["melt in your mouth nigiri", "creative rolls", "fish so fresh it squeaks"],
            &["japanese-cuisine"]),
        c("sushi-variety", FoodItem,
            &["sushi variety", "wide sushi selection"],
            &["endless roll options", "a menu of rolls pages long", "something raw for everyone"],
            &["sushi"]),
        c("tacos", FoodItem,
            &["taco", "tacos"],
            &["double wrapped street style", "tuesday night crowd pleasers", "fillings spilling out"],
            &["mexican-cuisine"]),
        c("burgers", FoodItem,
            &["burger", "burgers", "cheeseburger"],
            &["juicy patties stacked high", "smashed on the griddle", "messy in the best way"],
            &[]),
        c("chicken-wings", FoodItem,
            &["wings", "chicken wings", "buffalo wings"],
            &["saucy drums and flats", "crispy skin falling off the bone", "order extra blue cheese"],
            &["fried-chicken"]),
        c("fried-chicken", FoodItem,
            &["fried chicken", "chicken tenders", "chicken sandwich"],
            &["crackly golden crust", "brined overnight and juicy", "southern style bird"],
            &[]),
        c("ramen", FoodItem,
            &["ramen", "ramen shop"],
            &["rich tonkotsu bowls", "springy noodles and soft egg", "slurp worthy broth"],
            &["japanese-cuisine"]),
        c("pho", FoodItem,
            &["pho"],
            &["star anise scented bowls", "brisket and tendon add ins", "broth that cures colds"],
            &["vietnamese-cuisine"]),
        c("curry", FoodItem,
            &["curry", "curries"],
            &["simmered in coconut milk", "spice levels that mean it", "gravy begging for rice"],
            &[]),
        c("sandwiches", FoodItem,
            &["sandwich", "sandwiches", "deli", "sub shop", "hoagie"],
            &["piled high between bread", "lunch counter classics", "crusty rolls stuffed full"],
            &[]),
        c("salads", FoodItem,
            &["salad", "salads", "salad bar"],
            &["greens that are not an afterthought", "build your own bowls", "light but filling lunch"],
            &["healthy-options"]),
        c("breakfast-brunch", FoodItem,
            &["breakfast", "brunch"],
            &["weekend morning lines out the door", "eggs any style", "mimosa friendly mornings"],
            &[]),
        c("pancakes-waffles", FoodItem,
            &["pancakes", "waffles", "french toast"],
            &["syrup soaked stacks", "fluffy griddle goodness", "breakfast sweets done right"],
            &["breakfast-brunch"]),
        c("pastries", FoodItem,
            &["pastries", "croissant", "bakery", "baked goods"],
            &["flaky laminated layers", "cases of fresh morning bakes", "butter in every bite"],
            &[]),
        c("desserts", FoodItem,
            &["dessert", "desserts", "cakes"],
            &["save room for the ending", "sweet tooth paradise", "cakes worth the calories"],
            &[]),
        c("ice-cream", FoodItem,
            &["ice cream", "gelato", "frozen yogurt"],
            &["scoops churned daily", "cones dripping on hot days", "creamy frozen treats"],
            &["desserts"]),
        c("donuts", FoodItem,
            &["donut", "donuts", "doughnuts"],
            &["glazed rings still warm", "morning dozen to share", "fryer to counter in minutes"],
            &["pastries"]),
        c("bagels", FoodItem,
            &["bagel", "bagels"],
            &["boiled then baked the right way", "schmear options galore", "new york style rounds"],
            &["breakfast-brunch"]),
        c("oysters", FoodItem,
            &["oysters", "raw bar"],
            &["briny east coast dozen", "happy hour on the half shell", "mignonette and lemon ready"],
            &["seafood-restaurant"]),
        c("bbq-ribs", FoodItem,
            &["ribs", "brisket", "pulled pork"],
            &["bark and smoke in every bite", "falls apart with a fork", "pit master specials"],
            &["bbq-smokehouse"]),

        // ---------------- Drinks ----------------
        c("coffee-specialty", Drink,
            &["coffee", "cafe", "coffee shop", "coffeehouse"],
            &["single origin pour overs", "baristas who take it seriously", "beans roasted in house", "best flat white in town"],
            &[]),
        c("espresso-drinks", Drink,
            &["espresso", "latte", "cappuccino", "flat white"],
            &["perfectly pulled shots", "silky microfoam art", "cortados done properly"],
            &["coffee-specialty"]),
        c("tea-selection", Drink,
            &["tea", "tea house", "teas"],
            &["loose leaf by the pot", "oolongs and rare greens", "steeped with care"],
            &[]),
        c("bubble-tea", Drink,
            &["bubble tea", "boba"],
            &["chewy pearls in every sip", "taro and brown sugar favorites", "shaken to order"],
            &["tea-selection"]),
        c("craft-beer", Drink,
            &["craft beer", "brewery", "taproom", "brewpub"],
            &["rotating taps of local brews", "hazy ipas and crisp pilsners", "flights to sample the lineup"],
            &["beer-selection"]),
        c("beer-selection", Drink,
            &["beer", "beers on tap", "draft beer"],
            &["a wall of taps", "something cold for everyone", "pitchers with friends"],
            &[]),
        c("cocktails", Drink,
            &["cocktails", "cocktail bar", "mixology"],
            &["bartenders who stir with intent", "inventive seasonal drinks list", "balanced and boozy creations"],
            &[]),
        c("wine-list", Drink,
            &["wine", "wine bar", "winery"],
            &["deep cellar by the glass", "sommelier picked pairings", "old world and new world bottles"],
            &[]),
        c("whiskey-selection", Drink,
            &["whiskey", "bourbon", "scotch"],
            &["shelves of rare pours", "neat or with one cube", "flights of amber warmth"],
            &[]),
        c("milkshakes", Drink,
            &["milkshake", "milkshakes", "shakes"],
            &["thick enough to bend the straw", "malted old fashioned style", "blended dessert in a glass"],
            &["desserts"]),
        c("smoothies-juice", Drink,
            &["smoothie", "smoothies", "juice bar"],
            &["cold pressed greens", "blended fruit pick me ups", "post workout refuel"],
            &["healthy-options"]),

        // ---------------- Ambience ----------------
        c("cozy-atmosphere", Ambience,
            &["cozy", "intimate", "charming atmosphere"],
            &["feels like a warm hug", "tucked away and snug", "soft lighting and warm corners"],
            &[]),
        c("romantic-setting", Ambience,
            &["romantic", "date night"],
            &["candlelit tables for two", "anniversary worthy evenings", "where proposals happen"],
            &["cozy-atmosphere"]),
        c("family-friendly", Ambience,
            &["family friendly", "kid friendly", "family restaurant"],
            &["high chairs and crayons ready", "little ones welcome", "crowd of strollers on weekends"],
            &[]),
        c("dog-friendly", Ambience,
            &["dog friendly", "pet friendly"],
            &["water bowls on the patio", "bring your four legged friend", "pups welcome outside"],
            &[]),
        c("outdoor-seating", Ambience,
            &["patio", "outdoor seating", "terrace", "beer garden"],
            &["sunny tables outside", "al fresco afternoons", "string lights over picnic tables"],
            &[]),
        c("rooftop-view", Ambience,
            &["rooftop", "rooftop bar", "skyline view"],
            &["drinks above the city", "sunset over the skyline", "elevator to the top floor"],
            &["outdoor-seating"]),
        c("waterfront-view", Ambience,
            &["waterfront", "river view", "harbor view"],
            &["tables by the water", "watch the boats go by", "breezy dockside dining"],
            &[]),
        c("live-music", Ambience,
            &["live music", "live band", "music venue"],
            &["local acts most nights", "stage in the corner", "catch a set with dinner"],
            &[]),
        c("quiet-study-spot", Ambience,
            &["quiet", "study spot", "good for working"],
            &["laptop crowd on weekdays", "outlets at every table", "nobody rushes you out"],
            &[]),
        c("trendy-hip", Ambience,
            &["trendy", "hip", "stylish"],
            &["instagram ready corners", "the cool crowd's current favorite", "neon and exposed brick"],
            &[]),
        c("dive-bar-vibe", Ambience,
            &["dive bar", "no frills bar"],
            &["cheap pours and sticky floors", "jukebox and regulars", "zero pretension"],
            &["bar-venue"]),
        c("historic-charm", Ambience,
            &["historic", "landmark building"],
            &["original fixtures from another century", "walls that tell stories", "oldest spot on the block"],
            &[]),
        c("bar-venue", Ambience,
            &["bar", "pub", "tavern", "lounge"],
            &["grab a stool and settle in", "after work watering hole", "nightcap territory"],
            &[]),

        // ---------------- Activities ----------------
        c("live-sports-viewing", Activity,
            &["sports bar", "watch sports", "watch football", "game on tv", "watch the game"],
            &["big screens on every wall", "packed on game day", "every match on the projectors", "cheering crowds on sunday"],
            &["bar-venue"]),
        c("karaoke", Activity,
            &["karaoke"],
            &["private singing rooms", "belt your heart out", "mic and songbook nights"],
            &[]),
        c("trivia-night", Activity,
            &["trivia", "quiz night"],
            &["weekly brain battles", "teams defending their titles", "prizes for know it alls"],
            &["bar-venue"]),
        c("dancing-club", Activity,
            &["nightclub", "dance floor", "club"],
            &["djs until close", "bass you can feel", "dance until your feet hurt"],
            &[]),
        c("billiards-darts", Activity,
            &["pool tables", "billiards", "darts"],
            &["rack them up in the back", "friendly hustlers welcome", "chalk and cues provided"],
            &["bar-venue"]),
        c("arcade-games", Activity,
            &["arcade", "pinball", "arcade games"],
            &["quarters and high scores", "retro cabinets lining the walls", "button mashing nostalgia"],
            &[]),
        c("bowling", Activity,
            &["bowling", "bowling alley", "lanes"],
            &["strikes and gutter balls", "rent the funny shoes", "cosmic night on weekends"],
            &[]),

        // ---------------- Service / policies ----------------
        c("friendly-staff", Service,
            &["friendly staff", "great service", "helpful staff"],
            &["treated like a regular on day one", "team that remembers your order", "smiles all around", "staff who go the extra mile"],
            &[]),
        c("fast-service", Service,
            &["fast service", "quick service"],
            &["in and out on a lunch break", "food arrives before you settle in", "no dawdling in the kitchen"],
            &[]),
        c("late-night-hours", Service,
            &["late night", "open late", "open 24 hours"],
            &["feeds the after midnight crowd", "kitchen open when everything else closes", "last call comes late here"],
            &[]),
        c("open-early", Service,
            &["open early", "early hours"],
            &["doors open before sunrise", "first stop before work", "early birds welcome"],
            &[]),
        c("reservations-recommended", Service,
            &["reservations", "book ahead"],
            &["tables vanish weeks out", "walk ins wait a long time", "plan ahead for a seat"],
            &["popular-busy"]),
        c("takeout-delivery", Service,
            &["takeout", "delivery", "to go"],
            &["packed well for the road", "on your couch in thirty minutes", "call ahead and grab it"],
            &[]),
        c("drive-through", Service,
            &["drive thru", "drive through"],
            &["never leave the car", "line wraps the building at noon", "window service in a hurry"],
            &["fast-service"]),
        c("affordable-prices", Service,
            &["cheap", "affordable", "good prices", "great value"],
            &["wallet barely notices", "student budget approved", "big portions small bill"],
            &[]),
        c("upscale-expensive", Service,
            &["upscale", "fine dining", "high end"],
            &["white tablecloth treatment", "splurge worthy tasting menus", "dress code energy"],
            &[]),
        c("large-portions", Service,
            &["large portions", "big portions", "huge servings"],
            &["leftovers guaranteed", "plates that need two hands", "come hungry leave stuffed"],
            &[]),
        c("fresh-ingredients", Service,
            &["fresh ingredients", "farm to table", "locally sourced"],
            &["market haul on the menu", "picked this morning taste", "seasonal and local everything"],
            &[]),
        c("variety-of-options", Service,
            &["variety", "wide selection", "many options"],
            &["menu pages that keep going", "something for every craving", "impossible to try it all in one visit"],
            &[]),
        c("popular-busy", Service,
            &["popular", "busy", "crowded"],
            &["lines out the door", "local institution status", "everyone in town has a favorite order"],
            &[]),
        c("clean-space", Service,
            &["clean", "spotless"],
            &["you could eat off the floors", "tidy tables and restrooms", "well kept corners everywhere"],
            &[]),
        c("long-waits", Service,
            &["long wait", "slow service"],
            &["bring your patience", "kitchen takes its time", "worth it if you can wait"],
            &[]),
        c("healthy-options", Service,
            &["healthy", "healthy options", "nutritious"],
            &["macros on the menu", "clean eating made easy", "guilt free choices"],
            &[]),

        // ---------------- Dietary ----------------
        c("vegan-friendly", Dietary,
            &["vegan", "plant based"],
            &["no animal products anywhere", "herbivores eat like royalty", "dairy free desserts included"],
            &["vegetarian-options", "healthy-options"]),
        c("vegetarian-options", Dietary,
            &["vegetarian", "meatless options"],
            &["meat free without feeling left out", "garden driven dishes", "more than a sad side salad"],
            &[]),
        c("gluten-free-options", Dietary,
            &["gluten free"],
            &["celiac safe kitchen practices", "separate fryers for allergies", "bread alternatives that work"],
            &[]),

        // ---------------- Amenities ----------------
        c("free-wifi", Amenity,
            &["wifi", "free wifi", "internet"],
            &["password on the chalkboard", "remote workers camp here", "streaming speed connection"],
            &[]),
        c("parking-available", Amenity,
            &["parking", "parking lot", "free parking"],
            &["never circle the block", "spots right out front", "garage validated with purchase"],
            &[]),
        c("wheelchair-accessible", Amenity,
            &["wheelchair accessible", "accessible"],
            &["ramps and wide aisles", "step free entrance", "accommodating layout throughout"],
            &[]),
        c("kid-play-area", Amenity,
            &["play area", "playground inside"],
            &["little ones burn energy while you eat", "toys in the corner", "ball pit birthday zone"],
            &["family-friendly"]),
        c("private-rooms", Amenity,
            &["private room", "private dining", "event space"],
            &["book the back room", "parties without the crowd", "celebrations behind closed doors"],
            &[]),

        // ---------------- Retail ----------------
        c("grocery-store", Retail,
            &["grocery", "supermarket", "market"],
            &["aisles of weekly staples", "produce section done right", "one stop pantry restock"],
            &[]),
        c("bookstore", Retail,
            &["bookstore", "books"],
            &["shelves to get lost in", "staff picks worth trusting", "smell of old paper"],
            &[]),
        c("florist", Retail,
            &["florist", "flower shop", "flowers"],
            &["bouquets built while you wait", "stems fresh from the cooler", "arrangements for every occasion"],
            &[]),
        c("pharmacy", Retail,
            &["pharmacy", "drugstore"],
            &["prescriptions without the wait", "pharmacists who answer questions", "refills ready on time"],
            &[]),
        c("hardware-store", Retail,
            &["hardware", "hardware store", "tools"],
            &["aisle experts who actually know", "every screw and fitting", "weekend project headquarters"],
            &[]),
        c("clothing-boutique", Retail,
            &["boutique", "clothing store", "apparel"],
            &["curated racks not mall racks", "pieces nobody else has", "stylists disguised as clerks"],
            &[]),
        c("thrift-vintage", Retail,
            &["thrift", "vintage", "secondhand"],
            &["treasure hunting racks", "one of a kind finds", "yesterday's styles priced right"],
            &["clothing-boutique"]),
        c("jewelry-store", Retail,
            &["jewelry", "jeweler"],
            &["cases of sparkle", "custom settings and repairs", "ring shopping without pressure"],
            &[]),
        c("pet-supplies", Retail,
            &["pet store", "pet supplies"],
            &["aisles of treats and toys", "everything for furry family", "staff who love animals"],
            &[]),

        // ---------------- Automotive ----------------
        c("auto-repair", Automotive,
            &["auto repair", "mechanic", "car repair", "automotive"],
            &["honest wrenching at fair rates", "diagnose it right the first time", "back on the road fast", "most reliable service center around"],
            &[]),
        c("oil-change", Automotive,
            &["oil change", "oil change station"],
            &["in and out lube service", "sticker on the windshield", "quick top to bottom fluid check"],
            &["auto-repair"]),
        c("tire-service", Automotive,
            &["tires", "tire shop", "tire service"],
            &["rotation and balance while you wait", "plugged my flat in minutes", "rubber for every season"],
            &["auto-repair"]),
        c("car-wash", Automotive,
            &["car wash", "detailing"],
            &["showroom shine every time", "hand dried and vacuumed", "mud gone in ten minutes"],
            &[]),
        c("auto-parts", Automotive,
            &["auto parts", "car parts"],
            &["counter guys who find the part", "everything for diy repairs", "obscure components in stock"],
            &[]),

        // ---------------- Wellness ----------------
        c("hair-salon", Wellness,
            &["hair salon", "salon", "haircut"],
            &["stylists who listen first", "color corrections that save the day", "walk out feeling brand new"],
            &[]),
        c("barber-shop", Wellness,
            &["barber", "barbershop"],
            &["hot towel and straight razor", "fades sharp enough to cut", "old school chairs and banter"],
            &["hair-salon"]),
        c("nail-salon", Wellness,
            &["nail salon", "manicure", "pedicure"],
            &["gel sets that last weeks", "pampering from the ankle down", "colors for days"],
            &[]),
        c("spa-massage", Wellness,
            &["spa", "massage", "day spa"],
            &["knots melted away", "robes and cucumber water", "deep tissue that means it"],
            &[]),
        c("gym-fitness", Wellness,
            &["gym", "fitness center", "fitness"],
            &["racks never all taken", "trainers who push you", "sweat it out any hour"],
            &[]),
        c("yoga-studio", Wellness,
            &["yoga", "yoga studio", "pilates"],
            &["flows for every level", "savasana worth staying for", "mats and props provided"],
            &["gym-fitness"]),
        c("urgent-care", Wellness,
            &["urgent care", "walk in clinic"],
            &["seen without an appointment", "stitches and strep tests fast", "beats the emergency room wait"],
            &[]),
        c("dental-care", Wellness,
            &["dentist", "dental", "orthodontist"],
            &["gentle with nervous patients", "cleanings that don't hurt", "painless chairside manner"],
            &[]),
        c("tattoo-studio", Wellness,
            &["tattoo", "tattoo parlor", "piercing"],
            &["artists with waitlists", "clean needles steady hands", "custom ink from your sketch"],
            &[]),

        // ---------------- Leisure ----------------
        c("hotel-lodging", Leisure,
            &["hotel", "inn", "bed and breakfast"],
            &["beds you sink into", "front desk that fixes everything", "checkout always comes too soon"],
            &[]),
        c("museum-gallery", Leisure,
            &["museum", "gallery", "art gallery"],
            &["rotating exhibits worth repeat visits", "hours disappear inside", "docents full of stories"],
            &[]),
        c("park-trails", Leisure,
            &["park", "trails", "hiking"],
            &["shaded loops for morning runs", "picnic lawns and ponds", "green escape from the city"],
            &[]),
        c("playground", Leisure,
            &["playground", "play structure"],
            &["slides and swings galore", "kids worn out by lunch", "soft landing surfaces"],
            &["family-friendly", "park-trails"]),
        c("golf-course", Leisure,
            &["golf", "golf course", "driving range"],
            &["greens kept immaculate", "back nine with a view", "bucket of balls after work"],
            &[]),
        c("movie-theater", Leisure,
            &["movie theater", "cinema", "movies"],
            &["reclining seats and real butter", "matinee deals", "big screen the way films deserve"],
            &[]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_loads_and_is_large() {
        let o = Ontology::builtin();
        assert!(o.len() >= 90, "got {}", o.len());
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let o = Ontology::builtin();
        for c in o.concepts() {
            assert_eq!(o.id(c.name), Some(c.id), "name {}", c.name);
        }
    }

    #[test]
    fn every_concept_has_surface_and_paraphrases() {
        let o = Ontology::builtin();
        for c in o.concepts() {
            assert!(!c.surface.is_empty(), "{} lacks surface terms", c.name);
            assert!(!c.paraphrases.is_empty(), "{} lacks paraphrases", c.name);
        }
    }

    #[test]
    fn implication_closure_is_transitive() {
        let o = Ontology::builtin();
        // espresso-drinks → coffee-specialty directly.
        let espresso = o.id_of("espresso-drinks");
        let coffee = o.id_of("coffee-specialty");
        assert!(o.implied(espresso).contains(&coffee));
        // sushi-variety → sushi → japanese-cuisine transitively.
        let sv = o.id_of("sushi-variety");
        let jp = o.id_of("japanese-cuisine");
        assert!(o.implied(sv).contains(&jp));
    }

    #[test]
    fn satisfies_uses_implication() {
        let o = Ontology::builtin();
        let held = vec![o.id_of("espresso-drinks")];
        assert!(o.satisfies(&held, o.id_of("coffee-specialty")));
        assert!(o.satisfies(&held, o.id_of("espresso-drinks")));
        assert!(!o.satisfies(&held, o.id_of("pizza")));
    }

    #[test]
    fn satisfies_all_requires_every_concept() {
        let o = Ontology::builtin();
        let held = vec![o.id_of("live-sports-viewing"), o.id_of("chicken-wings")];
        let req = vec![o.id_of("bar-venue"), o.id_of("fried-chicken")];
        assert!(o.satisfies_all(&held, &req));
        let req2 = vec![o.id_of("bar-venue"), o.id_of("pizza")];
        assert!(!o.satisfies_all(&held, &req2));
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(Ontology::builtin().id("no-such-concept").is_none());
    }

    #[test]
    fn phrases_are_lowercase() {
        let o = Ontology::builtin();
        for c in o.concepts() {
            for p in c.surface.iter().chain(c.paraphrases) {
                assert_eq!(*p, p.to_lowercase(), "phrase not lowercase: {p}");
            }
        }
    }
}

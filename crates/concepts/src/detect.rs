//! Concept detection: mapping text onto ontology concepts.
//!
//! Detection is phrase matching over stemmed tokens. Run with
//! [`ConceptDetector::detect`] it is exact and defines ground truth; run
//! with [`ConceptDetector::detect_noisy`] it simulates an imperfect model
//! through a [`FidelityProfile`] — deterministic per (text, concept,
//! model), so the simulated world is stable across pipeline stages.

use std::collections::HashMap;

use textindex::tokenizer::{stem, Tokenizer};

use crate::concept::ConceptId;
use crate::hash::{fnv1a, mix, unit_float};
use crate::ontology::Ontology;

/// One detected concept occurrence in a text.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// The detected concept.
    pub concept: ConceptId,
    /// Whether the match came from a surface term (vs a paraphrase).
    pub via_surface: bool,
    /// Number of matching phrase occurrences in the text.
    pub occurrences: u32,
}

/// How reliably a simulated model recovers concepts from text.
///
/// The *ordering* of these profiles is what reproduces the paper's
/// Table 2: surface matching is easy for everyone; paraphrase
/// understanding separates the models.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityProfile {
    /// Display name of the profile (used in logs and experiment output).
    pub name: &'static str,
    /// Probability of recovering a concept mentioned via a surface term.
    pub surface_recall: f64,
    /// Probability of recovering a concept mentioned only via paraphrase.
    pub paraphrase_recall: f64,
    /// Probability (per draw, 3 draws) of hallucinating an unrelated
    /// concept.
    pub hallucination_rate: f64,
    /// Salt separating this model's noise stream from other models'.
    pub salt: u64,
}

impl FidelityProfile {
    /// Perfect detection — the ground-truth annotator.
    #[must_use]
    pub fn perfect() -> Self {
        Self {
            name: "ground-truth",
            surface_recall: 1.0,
            paraphrase_recall: 1.0,
            hallucination_rate: 0.0,
            salt: 0,
        }
    }

    /// The small embedding model (`text-embedding-3-small` stand-in):
    /// good surface recall, mediocre paraphrase understanding, a little
    /// noise. This is why SemaSK-EM plateaus around F1 0.28 and why the
    /// paper adds LLM refinement.
    #[must_use]
    pub fn embedding_small() -> Self {
        Self {
            name: "embedding-small",
            surface_recall: 0.95,
            paraphrase_recall: 0.55,
            hallucination_rate: 0.08,
            salt: 0x1111,
        }
    }

    /// GPT-4o stand-in: near-perfect semantics, minimal noise.
    #[must_use]
    pub fn gpt4o() -> Self {
        Self {
            name: "gpt-4o",
            surface_recall: 0.99,
            paraphrase_recall: 0.80,
            hallucination_rate: 0.04,
            salt: 0x4040,
        }
    }

    /// o1-mini stand-in: comparable to GPT-4o but with a different noise
    /// stream and slightly lower paraphrase recall — matching the paper's
    /// finding that "despite being a newer model, OpenAI o1-mini is not
    /// better for the spatial keyword query task".
    #[must_use]
    pub fn o1_mini() -> Self {
        Self {
            name: "o1-mini",
            surface_recall: 0.985,
            paraphrase_recall: 0.76,
            hallucination_rate: 0.05,
            salt: 0x0101,
        }
    }

    /// GPT-3.5 Turbo stand-in (used for tip summarization in the paper —
    /// cheaper, a bit less reliable).
    #[must_use]
    pub fn gpt35_turbo() -> Self {
        Self {
            name: "gpt-3.5-turbo",
            surface_recall: 0.98,
            paraphrase_recall: 0.82,
            hallucination_rate: 0.03,
            salt: 0x3535,
        }
    }
}

struct PhraseRef {
    tokens: Vec<String>,
    concept: ConceptId,
    surface: bool,
}

/// Detects ontology concepts in free text via stemmed phrase matching.
pub struct ConceptDetector {
    ontology: &'static Ontology,
    /// first-stemmed-token → candidate phrases starting with it.
    index: HashMap<String, Vec<PhraseRef>>,
    tokenizer: Tokenizer,
}

impl ConceptDetector {
    /// Builds a detector over the given ontology.
    #[must_use]
    pub fn new(ontology: &'static Ontology) -> Self {
        let tokenizer = Tokenizer::raw();
        let mut index: HashMap<String, Vec<PhraseRef>> = HashMap::new();
        for c in ontology.concepts() {
            for (phrases, surface) in [(c.surface, true), (c.paraphrases, false)] {
                for phrase in phrases {
                    let tokens: Vec<String> = tokenizer
                        .tokenize(phrase)
                        .into_iter()
                        .map(|t| stem(&t))
                        .collect();
                    if tokens.is_empty() {
                        continue;
                    }
                    let bucket = index.entry(tokens[0].clone()).or_default();
                    // Different raw phrases can stem to the same token
                    // sequence ("pizza"/"pizzas"); keep one entry, with
                    // surface-ness sticky.
                    if let Some(existing) = bucket
                        .iter_mut()
                        .find(|p| p.concept == c.id && p.tokens == tokens)
                    {
                        existing.surface |= surface;
                        continue;
                    }
                    bucket.push(PhraseRef {
                        tokens,
                        concept: c.id,
                        surface,
                    });
                }
            }
        }
        Self {
            ontology,
            index,
            tokenizer,
        }
    }

    /// A detector over the built-in ontology.
    #[must_use]
    pub fn builtin() -> Self {
        Self::new(Ontology::builtin())
    }

    /// The detector's ontology.
    #[must_use]
    pub fn ontology(&self) -> &'static Ontology {
        self.ontology
    }

    /// Exact detection: every concept whose surface term or paraphrase
    /// occurs (as a stemmed token subsequence) in `text`.
    #[must_use]
    pub fn detect(&self, text: &str) -> Vec<Detection> {
        let tokens: Vec<String> = self
            .tokenizer
            .tokenize(text)
            .into_iter()
            .map(|t| stem(&t))
            .collect();
        // concept → (via_surface, occurrences)
        let mut found: HashMap<ConceptId, (bool, u32)> = HashMap::new();
        for (i, tok) in tokens.iter().enumerate() {
            let Some(candidates) = self.index.get(tok) else {
                continue;
            };
            for cand in candidates {
                if cand.tokens.len() <= tokens.len() - i
                    && tokens[i..i + cand.tokens.len()] == cand.tokens[..]
                {
                    let e = found.entry(cand.concept).or_insert((false, 0));
                    e.0 |= cand.surface;
                    e.1 += 1;
                }
            }
        }
        let mut out: Vec<Detection> = found
            .into_iter()
            .map(|(concept, (via_surface, occurrences))| Detection {
                concept,
                via_surface,
                occurrences,
            })
            .collect();
        out.sort_by_key(|d| d.concept);
        out
    }

    /// Exact detection returning just the concept ids.
    #[must_use]
    pub fn detect_ids(&self, text: &str) -> Vec<ConceptId> {
        self.detect(text).into_iter().map(|d| d.concept).collect()
    }

    /// Noisy detection through a model's [`FidelityProfile`].
    ///
    /// - A surface-matched concept survives with `surface_recall`
    ///   probability; a paraphrase-only concept with `paraphrase_recall`.
    /// - Three hallucination draws may add unrelated concepts.
    ///
    /// All randomness is a deterministic function of
    /// `(text, concept, profile.salt)`.
    #[must_use]
    pub fn detect_noisy(&self, text: &str, profile: &FidelityProfile) -> Vec<Detection> {
        let text_hash = fnv1a(text.as_bytes());
        let mut out: Vec<Detection> = self
            .detect(text)
            .into_iter()
            .filter(|d| {
                let p = if d.via_surface {
                    profile.surface_recall
                } else {
                    profile.paraphrase_recall
                };
                let u = unit_float(mix(&[text_hash, u64::from(d.concept.0), profile.salt, 1]));
                u < p
            })
            .collect();
        // Hallucinations: up to 3 spurious concepts.
        if profile.hallucination_rate > 0.0 {
            let n = self.ontology.len() as u64;
            for draw in 0..3u64 {
                let h = mix(&[text_hash, profile.salt, 0xbad_c0de, draw]);
                if unit_float(h) < profile.hallucination_rate {
                    let concept = ConceptId((mix(&[h, 7]) % n) as u16);
                    if !out.iter().any(|d| d.concept == concept) {
                        out.push(Detection {
                            concept,
                            via_surface: false,
                            occurrences: 1,
                        });
                    }
                }
            }
        }
        out.sort_by_key(|d| d.concept);
        out
    }

    /// Noisy detection returning just concept ids.
    #[must_use]
    pub fn detect_noisy_ids(&self, text: &str, profile: &FidelityProfile) -> Vec<ConceptId> {
        self.detect_noisy(text, profile)
            .into_iter()
            .map(|d| d.concept)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det() -> ConceptDetector {
        ConceptDetector::builtin()
    }

    #[test]
    fn detects_surface_terms() {
        let d = det();
        let o = d.ontology();
        let ids = d.detect_ids("great little coffee shop downtown");
        assert!(ids.contains(&o.id_of("coffee-specialty")));
    }

    #[test]
    fn detects_multiword_paraphrases() {
        let d = det();
        let o = d.ontology();
        let ids = d.detect_ids("big screens on every wall and cold beer");
        assert!(ids.contains(&o.id_of("live-sports-viewing")));
        assert!(ids.contains(&o.id_of("beer-selection")));
    }

    #[test]
    fn surface_flag_distinguishes_match_kind() {
        let d = det();
        let o = d.ontology();
        let dets = d.detect("sports bar with big screens on every wall");
        let lsv = dets
            .iter()
            .find(|x| x.concept == o.id_of("live-sports-viewing"))
            .unwrap();
        assert!(lsv.via_surface);
        let dets2 = d.detect("big screens on every wall");
        let lsv2 = dets2
            .iter()
            .find(|x| x.concept == o.id_of("live-sports-viewing"))
            .unwrap();
        assert!(!lsv2.via_surface);
    }

    #[test]
    fn stemming_matches_inflections() {
        let d = det();
        let o = d.ontology();
        // "burger" surface term should match "burgers".
        let ids = d.detect_ids("best burgers in town");
        assert!(ids.contains(&o.id_of("burgers")));
    }

    #[test]
    fn empty_text_detects_nothing() {
        assert!(det().detect("").is_empty());
        assert!(det().detect("xyzzy plugh qwerty").is_empty());
    }

    #[test]
    fn occurrences_counted() {
        let d = det();
        let o = d.ontology();
        let dets = d.detect("pizza pizza and more pizza");
        let p = dets.iter().find(|x| x.concept == o.id_of("pizza")).unwrap();
        assert_eq!(p.occurrences, 3);
    }

    #[test]
    fn perfect_profile_changes_nothing() {
        let d = det();
        let text = "cozy cafe with single origin pour overs and free wifi";
        assert_eq!(
            d.detect(text),
            d.detect_noisy(text, &FidelityProfile::perfect())
        );
    }

    #[test]
    fn noisy_detection_is_deterministic() {
        let d = det();
        let p = FidelityProfile::embedding_small();
        let text = "candlelit tables for two, inventive seasonal drinks list";
        assert_eq!(d.detect_noisy(text, &p), d.detect_noisy(text, &p));
    }

    #[test]
    fn embedding_profile_misses_some_paraphrases() {
        let d = det();
        let p = FidelityProfile::embedding_small();
        // Across many paraphrase-only texts, the embedding profile should
        // miss a substantial fraction that gpt-4o keeps.
        let o = d.ontology();
        let mut missed_em = 0;
        let mut missed_4o = 0;
        let mut total = 0;
        for c in o.concepts() {
            for para in c.paraphrases {
                total += 1;
                let truth = d.detect_ids(para);
                if !truth.contains(&c.id) {
                    continue; // phrase shadowed by another concept: skip
                }
                if !d.detect_noisy_ids(para, &p).contains(&c.id) {
                    missed_em += 1;
                }
                if !d
                    .detect_noisy_ids(para, &FidelityProfile::gpt4o())
                    .contains(&c.id)
                {
                    missed_4o += 1;
                }
            }
        }
        assert!(total > 200);
        assert!(
            missed_em > missed_4o * 2,
            "embedding missed {missed_em}, gpt-4o missed {missed_4o}"
        );
    }

    #[test]
    fn different_models_disagree_somewhere() {
        let d = det();
        let texts = [
            "flows for every level and savasana worth staying for",
            "knots melted away with robes and cucumber water",
            "treasure hunting racks with one of a kind finds",
            "sunset over the skyline with inventive seasonal drinks list",
        ];
        let em = FidelityProfile::embedding_small();
        let o1 = FidelityProfile::o1_mini();
        let mut any_diff = false;
        for t in texts {
            if d.detect_noisy(t, &em) != d.detect_noisy(t, &o1) {
                any_diff = true;
            }
        }
        assert!(any_diff);
    }
}

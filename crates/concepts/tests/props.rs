//! Property-based tests for the semantic world model.

use concepts::{ConceptDetector, FidelityProfile, Ontology};
use proptest::prelude::*;

fn arb_phrase_text() -> impl Strategy<Value = String> {
    // Texts assembled from real ontology phrases plus noise words.
    let o = Ontology::builtin();
    let phrases: Vec<String> = o
        .concepts()
        .iter()
        .flat_map(|c| {
            c.surface
                .iter()
                .chain(c.paraphrases)
                .map(|s| (*s).to_owned())
        })
        .collect();
    (
        prop::collection::vec(0usize..phrases.len(), 0..5),
        prop::collection::vec("[a-z]{3,8}", 0..5),
    )
        .prop_map(move |(idx, noise)| {
            let mut parts: Vec<String> = idx.iter().map(|&i| phrases[i].clone()).collect();
            parts.extend(noise);
            parts.join(" and ")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn noisy_nonhallucinated_detections_are_subset_of_exact(text in arb_phrase_text()) {
        let d = ConceptDetector::builtin();
        // A profile without hallucinations can only *drop* detections.
        let profile = FidelityProfile {
            hallucination_rate: 0.0,
            ..FidelityProfile::embedding_small()
        };
        let exact: Vec<_> = d.detect_ids(&text);
        for c in d.detect_noisy_ids(&text, &profile) {
            prop_assert!(exact.contains(&c));
        }
    }

    #[test]
    fn perfect_profile_equals_exact(text in arb_phrase_text()) {
        let d = ConceptDetector::builtin();
        prop_assert_eq!(
            d.detect(&text),
            d.detect_noisy(&text, &FidelityProfile::perfect())
        );
    }

    #[test]
    fn detection_is_case_insensitive(text in arb_phrase_text()) {
        let d = ConceptDetector::builtin();
        prop_assert_eq!(d.detect_ids(&text), d.detect_ids(&text.to_uppercase()));
    }

    #[test]
    fn satisfies_is_reflexive_and_monotone(
        a in 0u16..90, b in 0u16..90,
    ) {
        let o = Ontology::builtin();
        let a = concepts::ConceptId(a % o.len() as u16);
        let b = concepts::ConceptId(b % o.len() as u16);
        prop_assert!(o.satisfies(&[a], a));
        // Adding concepts never removes satisfaction.
        if o.satisfies(&[a], b) {
            prop_assert!(o.satisfies(&[a, concepts::ConceptId(0)], b));
        }
    }

    #[test]
    fn implied_closure_is_transitive(c in 0u16..90) {
        let o = Ontology::builtin();
        let c = concepts::ConceptId(c % o.len() as u16);
        for &d in o.implied(c) {
            for &e in o.implied(d) {
                prop_assert!(
                    o.implied(c).contains(&e),
                    "closure not transitive: {} -> {} -> {}",
                    o.concept(c).name,
                    o.concept(d).name,
                    o.concept(e).name
                );
            }
        }
    }
}

//! The full five-city benchmark workload.

use crate::city::{City, CITIES};
use crate::poi::{generate_city, CityData};
use crate::queries::{generate_queries, QueryGenConfig, TestQuery};

/// Workload construction knobs.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// POI-count scale relative to the paper (1.0 ⇒ 19,795 POIs total;
    /// tests use smaller scales).
    pub scale: f64,
    /// Query generation parameters.
    pub queries: QueryGenConfig,
    /// Dataset RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            scale: 1.0,
            queries: QueryGenConfig::default(),
            seed: 0xda7a,
        }
    }
}

impl WorkloadConfig {
    /// A reduced-scale configuration for tests (≈ `frac` of paper size).
    #[must_use]
    pub fn test_scale(frac: f64) -> Self {
        Self {
            scale: frac,
            queries: QueryGenConfig {
                per_city: 10,
                ..QueryGenConfig::default()
            },
            seed: 0xda7a,
        }
    }
}

/// A generated five-city benchmark: datasets plus evaluation queries.
pub struct Workload {
    /// Per-city data, in [`CITIES`] order.
    pub cities: Vec<CityData>,
    /// Per-city query sets, aligned with `cities`.
    pub queries: Vec<Vec<TestQuery>>,
    /// The configuration used.
    pub config: WorkloadConfig,
}

impl Workload {
    /// Builds the workload. Deterministic in the configuration.
    #[must_use]
    pub fn build(config: WorkloadConfig) -> Self {
        let mut cities = Vec::with_capacity(CITIES.len());
        let mut queries = Vec::with_capacity(CITIES.len());
        for city in CITIES {
            let count = ((city.paper_poi_count as f64) * config.scale)
                .round()
                .max(10.0) as usize;
            let data = generate_city(city, count, config.seed);
            let qs = generate_queries(&data, &config.queries);
            cities.push(data);
            queries.push(qs);
        }
        Self {
            cities,
            queries,
            config,
        }
    }

    /// Total POIs across cities.
    #[must_use]
    pub fn total_pois(&self) -> usize {
        self.cities.iter().map(|c| c.dataset.len()).sum()
    }

    /// Total queries across cities.
    #[must_use]
    pub fn total_queries(&self) -> usize {
        self.queries.iter().map(Vec::len).sum()
    }

    /// City metadata in order.
    #[must_use]
    pub fn city_list(&self) -> Vec<&City> {
        self.cities.iter().map(|c| &c.city).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_workload_builds() {
        let w = Workload::build(WorkloadConfig::test_scale(0.05));
        assert_eq!(w.cities.len(), 5);
        assert!(w.total_pois() > 500);
        assert_eq!(w.total_queries(), 50);
    }

    #[test]
    fn scale_controls_counts() {
        let w = Workload::build(WorkloadConfig::test_scale(0.02));
        // 2% of 4,235 ≈ 85.
        assert!((80..=90).contains(&w.cities[0].dataset.len()));
    }

    #[test]
    fn deterministic() {
        let a = Workload::build(WorkloadConfig::test_scale(0.02));
        let b = Workload::build(WorkloadConfig::test_scale(0.02));
        assert_eq!(a.queries[0][0].text, b.queries[0][0].text);
        assert_eq!(
            a.cities[2].dataset.objects()[5],
            b.cities[2].dataset.objects()[5]
        );
    }
}

//! JSONL export/import of generated datasets.
//!
//! The paper cannot redistribute its Yelp-derived dataset and instead
//! documents construction steps; this module is the synthetic analogue —
//! dump a generated city to Yelp-style JSONL (one business object per
//! line, like `yelp_academic_dataset_business.json`) and load it back.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use geotext::{AttributeValue, Dataset, GeoPoint, GeoTextObject};
use serde_json::Value;

/// Errors from dataset export/import.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExportError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A line was not a valid JSON object or lacked required fields.
    BadRecord {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        cause: String,
    },
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExportError::Io(e) => write!(f, "io error: {e}"),
            ExportError::BadRecord { line, cause } => {
                write!(f, "bad record at line {line}: {cause}")
            }
        }
    }
}

impl std::error::Error for ExportError {}

impl From<std::io::Error> for ExportError {
    fn from(e: std::io::Error) -> Self {
        ExportError::Io(e)
    }
}

/// Writes a dataset as JSONL: one JSON object per POI, with `latitude`
/// and `longitude` fields plus every attribute.
pub fn write_jsonl(dataset: &Dataset, path: &Path) -> Result<(), ExportError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    for obj in dataset.iter() {
        let json = obj.to_json();
        serde_json::to_writer(&mut w, &json).map_err(|e| ExportError::BadRecord {
            line: obj.id.index() + 1,
            cause: e.to_string(),
        })?;
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

fn value_to_attr(v: &Value) -> Option<AttributeValue> {
    match v {
        Value::String(s) => Some(AttributeValue::Text(s.clone())),
        Value::Bool(b) => Some(AttributeValue::Bool(*b)),
        Value::Number(n) => {
            if let Some(i) = n.as_i64() {
                Some(AttributeValue::Integer(i))
            } else {
                n.as_f64().map(AttributeValue::Number)
            }
        }
        Value::Array(a) => {
            let items: Option<Vec<String>> =
                a.iter().map(|x| x.as_str().map(str::to_owned)).collect();
            items.map(AttributeValue::List)
        }
        Value::Object(o) => {
            let map: Option<BTreeMap<String, String>> = o
                .iter()
                .map(|(k, x)| x.as_str().map(|s| (k.clone(), s.to_owned())))
                .collect();
            map.map(AttributeValue::Map)
        }
        Value::Null => None,
    }
}

/// Reads a JSONL dataset written by [`write_jsonl`] (or hand-built in
/// the same Yelp-like schema).
pub fn read_jsonl(name: &str, path: &Path) -> Result<Dataset, ExportError> {
    let file = std::fs::File::open(path)?;
    let reader = BufReader::new(file);
    let mut dataset = Dataset::new(name);
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(&line).map_err(|e| ExportError::BadRecord {
            line: i + 1,
            cause: e.to_string(),
        })?;
        let obj = v.as_object().ok_or_else(|| ExportError::BadRecord {
            line: i + 1,
            cause: "not a JSON object".to_owned(),
        })?;
        let lat =
            obj.get("latitude")
                .and_then(Value::as_f64)
                .ok_or_else(|| ExportError::BadRecord {
                    line: i + 1,
                    cause: "missing latitude".to_owned(),
                })?;
        let lon = obj
            .get("longitude")
            .and_then(Value::as_f64)
            .ok_or_else(|| ExportError::BadRecord {
                line: i + 1,
                cause: "missing longitude".to_owned(),
            })?;
        let location = GeoPoint::new(lat, lon).map_err(|e| ExportError::BadRecord {
            line: i + 1,
            cause: e.to_string(),
        })?;
        dataset.push(|id| {
            let mut b = GeoTextObject::builder(id, location);
            for (k, v) in obj {
                if k == "latitude" || k == "longitude" {
                    continue;
                }
                if let Some(attr) = value_to_attr(v) {
                    b = b.attr(k.clone(), attr);
                }
            }
            b.build().expect("record has textual attributes")
        });
    }
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CITIES;
    use crate::poi::generate_city;

    #[test]
    fn jsonl_roundtrip_preserves_records() {
        let data = generate_city(&CITIES[3], 40, 77);
        let dir = std::env::temp_dir().join("datagen_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("city.jsonl");
        write_jsonl(&data.dataset, &path).unwrap();
        let back = read_jsonl("roundtrip", &path).unwrap();
        assert_eq!(back.len(), data.dataset.len());
        for (a, b) in data.dataset.iter().zip(back.iter()) {
            assert_eq!(a.name(), b.name());
            assert!((a.location.lat - b.location.lat).abs() < 1e-12);
            assert_eq!(
                a.attrs.get("categories").map(|v| v.flatten()),
                b.attrs.get("categories").map(|v| v.flatten())
            );
            assert_eq!(
                a.attrs.get("tips").map(|v| v.flatten()),
                b.attrs.get("tips").map(|v| v.flatten())
            );
            assert_eq!(
                a.attrs.get("stars").and_then(|v| v.as_f64()),
                b.attrs.get("stars").and_then(|v| v.as_f64())
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_rejects_garbage() {
        let dir = std::env::temp_dir().join("datagen_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        std::fs::write(&path, "not json\n").unwrap();
        assert!(read_jsonl("bad", &path).is_err());
        std::fs::write(&path, "{\"name\": \"x\"}\n").unwrap();
        assert!(read_jsonl("bad", &path).is_err()); // missing coordinates
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_lines_skipped() {
        let dir = std::env::temp_dir().join("datagen_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sparse.jsonl");
        std::fs::write(
            &path,
            "\n{\"latitude\": 1.0, \"longitude\": 2.0, \"name\": \"a\"}\n\n",
        )
        .unwrap();
        let d = read_jsonl("sparse", &path).unwrap();
        assert_eq!(d.len(), 1);
        std::fs::remove_file(&path).ok();
    }
}

//! Metro-scale synthesis: composing the five paper cities into one
//! large extent.
//!
//! The paper evaluates on 19,795 POIs across five cities. To exercise
//! the memory-efficiency tier (quantized scoring, learned id lookups,
//! compressed tip text) we need worlds two to three orders of magnitude
//! larger, and they must stay *Yelp-shaped*: the same archetype mix,
//! the same latent-concept ground truth, the same tip style. Rather
//! than invent a new generator, [`generate_metro`] scales the existing
//! per-city generator and composes its output:
//!
//! - each paper city becomes a **district** of the metro, placed on a
//!   quincunx around the metro centre (±5.5 km offsets);
//! - district POI counts are **proportional to the paper's counts**, so
//!   the archetype and density mix of the original evaluation carries
//!   over to any scale;
//! - POI scatter within a district is the original city scatter scaled
//!   by 0.45, keeping every point within the reverse geocoder's 12 km
//!   half-extent of the metro centre;
//! - larger metros get **proportionally heavier tip corpora** (the
//!   `tip_factor` knob, auto-scaled with size), because real review
//!   volume grows superlinearly with market size and the compressed
//!   payload tier is only honest if the text actually dominates memory.
//!
//! Everything is deterministic in `(total_pois, seed)`.

use concepts::Ontology;
use geotext::EARTH_RADIUS_KM;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::city::{CITIES, METRO};
use crate::poi::{generate_city, CityData};
use crate::tips::generate_tips;

/// District centre offsets (km north, km east) from the metro centre —
/// a quincunx: one downtown core, four satellite districts.
const DISTRICT_OFFSETS_KM: [(f64, f64); 5] = [
    (0.0, 0.0),
    (5.5, 5.5),
    (5.5, -5.5),
    (-5.5, 5.5),
    (-5.5, -5.5),
];

/// How much a district compresses its source city's scatter. The city
/// generator clamps scatter to ±11 km per axis; 0.45 × 11 + 5.5 ≈
/// 10.5 km keeps every POI inside the geocoder's 12 km half-extent.
const DISTRICT_SCALE: f64 = 0.45;

/// Configuration for one metro synthesis.
#[derive(Debug, Clone, Copy)]
pub struct MetroConfig {
    /// Total POIs across all districts (the paper's world is ~20k;
    /// metro runs target 100k–1M).
    pub total_pois: usize,
    /// Master seed; the metro is deterministic in `(total_pois, seed)`.
    pub seed: u64,
    /// Tip-corpus multiplier: each POI's tips are augmented with
    /// `tip_factor - 1` extra generation rounds. `None` auto-scales:
    /// 1 below 100k POIs, 2 from 100k, 3 from 500k.
    pub tip_factor: Option<usize>,
}

impl MetroConfig {
    /// A metro of `total_pois` points with auto tip scaling.
    #[must_use]
    pub fn new(total_pois: usize, seed: u64) -> Self {
        Self {
            total_pois,
            seed,
            tip_factor: None,
        }
    }

    /// The effective tip multiplier (resolving the auto rule).
    #[must_use]
    pub fn effective_tip_factor(&self) -> usize {
        self.tip_factor
            .unwrap_or(match self.total_pois {
                n if n >= 500_000 => 3,
                n if n >= 100_000 => 2,
                _ => 1,
            })
            .max(1)
    }
}

/// Splits `total` across the districts proportionally to the paper's
/// per-city POI counts, distributing the rounding remainder to the
/// largest districts first so the sum is exact.
#[must_use]
pub fn district_counts(total: usize) -> Vec<usize> {
    let paper_total: usize = CITIES.iter().map(|c| c.paper_poi_count).sum();
    let mut counts: Vec<usize> = CITIES
        .iter()
        .map(|c| total * c.paper_poi_count / paper_total)
        .collect();
    let mut assigned: usize = counts.iter().sum();
    // Hand out the remainder in descending paper-count order
    // (deterministic: indices break ties).
    let mut order: Vec<usize> = (0..CITIES.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(CITIES[i].paper_poi_count));
    let mut cursor = 0;
    while assigned < total {
        counts[order[cursor % order.len()]] += 1;
        assigned += 1;
        cursor += 1;
    }
    counts
}

/// Generates a metro of `cfg.total_pois` POIs. Deterministic in
/// `(total_pois, seed)`; the result's `city` is [`METRO`] and ids are
/// dense `0..total_pois` in district order.
#[must_use]
pub fn generate_metro(cfg: &MetroConfig) -> CityData {
    let ontology = Ontology::builtin();
    let tip_factor = cfg.effective_tip_factor();
    let metro_center = METRO.center();
    let mut tip_rng = StdRng::seed_from_u64(cfg.seed ^ concepts::hash::fnv1a(METRO.key.as_bytes()));

    let mut dataset = geotext::Dataset::new(METRO.name);
    let mut truth = Vec::with_capacity(cfg.total_pois);
    let mut name_styles = Vec::with_capacity(cfg.total_pois);
    let mut archetype_idx = Vec::with_capacity(cfg.total_pois);

    for (district, count) in district_counts(cfg.total_pois).into_iter().enumerate() {
        let city = &CITIES[district];
        let src = generate_city(city, count, cfg.seed);
        let src_center = city.center();
        let cos_lat = src_center.lat.to_radians().cos().max(1e-9);
        let (off_n, off_e) = DISTRICT_OFFSETS_KM[district];

        for (i, obj) in src.dataset.objects().iter().enumerate() {
            // Recover the POI's (north, east) km offset from its source
            // city centre (inverse of `GeoPoint::offset_km`), compress
            // it, and re-plant it in the district.
            let dn_km = (obj.location.lat - src_center.lat).to_radians() * EARTH_RADIUS_KM;
            let de_km =
                (obj.location.lon - src_center.lon).to_radians() * EARTH_RADIUS_KM * cos_lat;
            let location = metro_center.offset_km(
                off_n + dn_km * DISTRICT_SCALE,
                off_e + de_km * DISTRICT_SCALE,
            );

            let mut attrs = obj.attrs.clone();
            if tip_factor > 1 {
                let mut tips: Vec<String> = attrs
                    .get("tips")
                    .and_then(|v| v.as_list())
                    .map(<[String]>::to_vec)
                    .unwrap_or_default();
                for _ in 1..tip_factor {
                    tips.extend(generate_tips(&src.truth[i], ontology, &mut tip_rng));
                }
                attrs.set("tip_count", tips.len() as i64);
                attrs.set("tips", tips);
            }

            dataset.push(|id| geotext::GeoTextObject {
                id,
                location,
                attrs,
            });
        }
        truth.extend(src.truth);
        name_styles.extend(src.name_styles);
        archetype_idx.extend(src.archetype_idx);
    }

    CityData {
        city: METRO,
        dataset,
        truth,
        name_styles,
        archetype_idx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotext::ObjectId;

    #[test]
    fn district_counts_sum_exactly_and_track_paper_mix() {
        for total in [100, 1_000, 19_795, 100_000, 1_000_000] {
            let counts = district_counts(total);
            assert_eq!(counts.iter().sum::<usize>(), total);
            // Philadelphia (index 2) is the paper's largest city and
            // must stay the largest district at any scale.
            let max = counts.iter().copied().max().unwrap();
            assert_eq!(counts[2], max, "counts {counts:?} at total {total}");
        }
    }

    #[test]
    fn deterministic_in_config() {
        let a = generate_metro(&MetroConfig::new(400, 9));
        let b = generate_metro(&MetroConfig::new(400, 9));
        assert_eq!(a.dataset.len(), b.dataset.len());
        assert_eq!(a.dataset.objects()[123], b.dataset.objects()[123]);
        assert_eq!(a.truth[123], b.truth[123]);
        // A different seed moves things.
        let c = generate_metro(&MetroConfig::new(400, 10));
        assert_ne!(
            a.dataset.objects()[0].location.lat,
            c.dataset.objects()[0].location.lat
        );
    }

    #[test]
    fn dense_ids_and_parallel_truth() {
        let m = generate_metro(&MetroConfig::new(777, 3));
        assert_eq!(m.dataset.len(), 777);
        assert_eq!(m.truth.len(), 777);
        assert_eq!(m.name_styles.len(), 777);
        assert_eq!(m.archetype_idx.len(), 777);
        assert_eq!(m.dataset.objects()[500].id, ObjectId(500));
    }

    #[test]
    fn every_poi_fits_the_geocoder_extent() {
        let m = generate_metro(&MetroConfig::new(2_000, 42));
        let center = METRO.center();
        for o in m.dataset.iter() {
            let d = center.haversine_km(&o.location);
            assert!(d < 16.0, "POI {} is {d:.1} km out", o.id.index());
        }
    }

    #[test]
    fn districts_are_spatially_separated() {
        // The downtown district (offset 0,0) and the NE district
        // (+5.5,+5.5) should have distinct centroids.
        let m = generate_metro(&MetroConfig::new(1_000, 5));
        let counts = district_counts(1_000);
        let first = &m.dataset.objects()[..counts[0]];
        let second = &m.dataset.objects()[counts[0]..counts[0] + counts[1]];
        let centroid = |objs: &[geotext::GeoTextObject]| {
            let n = objs.len() as f64;
            (
                objs.iter().map(|o| o.location.lat).sum::<f64>() / n,
                objs.iter().map(|o| o.location.lon).sum::<f64>() / n,
            )
        };
        let (lat_a, lon_a) = centroid(first);
        let (lat_b, lon_b) = centroid(second);
        let d = geotext::GeoPoint::new_unchecked(lat_a, lon_a)
            .haversine_km(&geotext::GeoPoint::new_unchecked(lat_b, lon_b));
        assert!(d > 4.0, "district centroids only {d:.1} km apart");
    }

    #[test]
    fn tip_factor_scales_the_corpus() {
        let base = generate_metro(&MetroConfig {
            total_pois: 300,
            seed: 11,
            tip_factor: Some(1),
        });
        let heavy = generate_metro(&MetroConfig {
            total_pois: 300,
            seed: 11,
            tip_factor: Some(3),
        });
        let avg = |m: &CityData| m.dataset.stats().avg_tips_per_object;
        let (a, b) = (avg(&base), avg(&heavy));
        assert!(
            b > 2.5 * a,
            "tip_factor=3 should ~triple the corpus (got {a:.1} -> {b:.1})"
        );
        // tip_count attribute stays consistent with the tips list.
        for o in heavy.dataset.iter().take(50) {
            let n = o.attrs.get("tips").and_then(|v| v.as_list()).unwrap().len();
            assert_eq!(
                o.attrs.get("tip_count").and_then(|v| v.as_f64()),
                Some(n as f64)
            );
        }
    }

    #[test]
    fn auto_tip_factor_steps_with_scale() {
        assert_eq!(MetroConfig::new(50_000, 0).effective_tip_factor(), 1);
        assert_eq!(MetroConfig::new(100_000, 0).effective_tip_factor(), 2);
        assert_eq!(MetroConfig::new(500_000, 0).effective_tip_factor(), 3);
        let forced = MetroConfig {
            total_pois: 1_000_000,
            seed: 0,
            tip_factor: Some(1),
        };
        assert_eq!(forced.effective_tip_factor(), 1);
    }

    #[test]
    fn districts_keep_source_city_names() {
        let m = generate_metro(&MetroConfig::new(500, 2));
        let counts = district_counts(500);
        assert_eq!(
            m.dataset.objects()[0].attrs.get_text("city"),
            Some("Indianapolis")
        );
        assert_eq!(
            m.dataset.objects()[counts[0]].attrs.get_text("city"),
            Some("Nashville")
        );
    }
}

//! The five evaluation cities, with the paper's POI counts.

use geotext::GeoPoint;

/// One evaluation city.
#[derive(Debug, Clone, Copy)]
pub struct City {
    /// Short key used in tables ("IN", "NS", …) — the paper's labels.
    pub key: &'static str,
    /// Full name.
    pub name: &'static str,
    /// US state abbreviation.
    pub state: &'static str,
    /// Downtown coordinates.
    pub center_lat: f64,
    /// Downtown coordinates.
    pub center_lon: f64,
    /// Number of POIs in the paper's dataset for this city.
    pub paper_poi_count: usize,
    /// County name (for address completion).
    pub county: &'static str,
}

impl City {
    /// Downtown centre as a `GeoPoint`.
    #[must_use]
    pub fn center(&self) -> GeoPoint {
        GeoPoint::new_unchecked(self.center_lat, self.center_lon)
    }
}

/// The paper's five test cities (Section 4): Indianapolis (4,235),
/// Nashville (3,716), Philadelphia (7,592), Santa Barbara (1,790), and
/// Saint Louis (2,462).
pub const CITIES: &[City] = &[
    City {
        key: "IN",
        name: "Indianapolis",
        state: "IN",
        center_lat: 39.7684,
        center_lon: -86.1581,
        paper_poi_count: 4235,
        county: "Marion County",
    },
    City {
        key: "NS",
        name: "Nashville",
        state: "TN",
        center_lat: 36.1627,
        center_lon: -86.7816,
        paper_poi_count: 3716,
        county: "Davidson County",
    },
    City {
        key: "PH",
        name: "Philadelphia",
        state: "PA",
        center_lat: 39.9526,
        center_lon: -75.1652,
        paper_poi_count: 7592,
        county: "Philadelphia County",
    },
    City {
        key: "SB",
        name: "Santa Barbara",
        state: "CA",
        center_lat: 34.4208,
        center_lon: -119.6982,
        paper_poi_count: 1790,
        county: "Santa Barbara County",
    },
    City {
        key: "SL",
        name: "Saint Louis",
        state: "MO",
        center_lat: 38.6270,
        center_lon: -90.1994,
        paper_poi_count: 2462,
        county: "St. Louis City",
    },
];

/// The synthetic metro used by the metro-scale benchmarks: one extent
/// composed of the five paper cities as districts (see
/// [`crate::metro`]). Not part of [`CITIES`] — the paper's totals stay
/// pinned; this is the scale-up world the paper never had data for.
pub const METRO: City = City {
    key: "MX",
    name: "Metroplex",
    state: "US",
    center_lat: 39.9612,
    center_lon: -82.9988,
    paper_poi_count: 100_000,
    county: "Metro County",
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_cities_with_paper_counts() {
        assert_eq!(CITIES.len(), 5);
        let total: usize = CITIES.iter().map(|c| c.paper_poi_count).sum();
        assert_eq!(total, 19_795); // the paper's total
    }

    #[test]
    fn keys_match_paper_labels() {
        let keys: Vec<&str> = CITIES.iter().map(|c| c.key).collect();
        assert_eq!(keys, vec!["IN", "NS", "PH", "SB", "SL"]);
    }

    #[test]
    fn centers_are_valid_coordinates() {
        for c in CITIES {
            let p = c.center();
            assert!(p.lat > 30.0 && p.lat < 42.0);
            assert!(p.lon < -70.0 && p.lon > -125.0);
        }
    }
}

//! A deterministic reverse geocoder.
//!
//! The paper completes incomplete POI addresses with a reverse-geocoding
//! web API (geocode.maps.co), obtaining "city, county, suburb, and
//! neighborhood information based on coordinates". This module is the
//! offline equivalent: a gazetteer that deterministically assigns a
//! suburb and neighborhood to every coordinate from a grid around each
//! city centre. The demo UI's suburb selector is also driven by it.

use geotext::GeoPoint;

use crate::city::City;

/// A completed address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Address {
    /// City name.
    pub city: String,
    /// County name.
    pub county: String,
    /// Suburb (grid district).
    pub suburb: String,
    /// Neighborhood (grid cell).
    pub neighborhood: String,
}

const SUBURB_NAMES: &[&str] = &[
    "Downtown",
    "Riverside",
    "Old Town",
    "Midtown",
    "University District",
    "East End",
    "West End",
    "Northside",
    "Southside",
    "The Heights",
    "Garden District",
    "Harbor Point",
    "Mill Creek",
    "Fairgrounds",
    "Arsenal Hill",
    "Lakeview",
];

const NEIGHBORHOOD_SUFFIXES: &[&str] = &[
    "Commons", "Square", "Village", "Crossing", "Row", "Yards", "Flats", "Park", "Terrace",
    "Junction",
];

/// Reverse geocoder for one city: a `grid × grid` partition of the
/// ±`half_extent_km` box around the centre.
#[derive(Debug, Clone)]
pub struct ReverseGeocoder {
    city_name: String,
    county: String,
    center: GeoPoint,
    half_extent_km: f64,
    grid: usize,
}

impl ReverseGeocoder {
    /// A geocoder for a city with the default 12 km half-extent and a 4×4
    /// suburb grid.
    #[must_use]
    pub fn for_city(city: &City) -> Self {
        Self {
            city_name: city.name.to_owned(),
            county: city.county.to_owned(),
            center: city.center(),
            half_extent_km: 12.0,
            grid: 4,
        }
    }

    /// All suburb names this geocoder can produce (for the demo UI's
    /// region selector).
    #[must_use]
    pub fn suburbs(&self) -> Vec<String> {
        (0..self.grid * self.grid)
            .map(|i| SUBURB_NAMES[i % SUBURB_NAMES.len()].to_owned())
            .collect()
    }

    fn cell_of(&self, p: &GeoPoint) -> (usize, usize) {
        // Kilometre offsets from the centre, clamped into the grid.
        let dy = (p.lat - self.center.lat).to_radians() * geotext::EARTH_RADIUS_KM;
        let dx = (p.lon - self.center.lon).to_radians()
            * geotext::EARTH_RADIUS_KM
            * self.center.lat.to_radians().cos();
        let half = self.half_extent_km;
        let gx = (((dx + half) / (2.0 * half)) * self.grid as f64)
            .clamp(0.0, self.grid as f64 - 1.0) as usize;
        let gy = (((dy + half) / (2.0 * half)) * self.grid as f64)
            .clamp(0.0, self.grid as f64 - 1.0) as usize;
        (gx, gy)
    }

    /// Reverse geocodes a point.
    #[must_use]
    pub fn locate(&self, p: &GeoPoint) -> Address {
        let (gx, gy) = self.cell_of(p);
        let suburb_idx = gy * self.grid + gx;
        let suburb = SUBURB_NAMES[suburb_idx % SUBURB_NAMES.len()].to_owned();
        // Sub-cell (2×2 within the suburb cell) picks the neighborhood
        // suffix, so adjacent addresses agree.
        let suffix =
            NEIGHBORHOOD_SUFFIXES[(suburb_idx * 3 + gx + gy) % NEIGHBORHOOD_SUFFIXES.len()];
        Address {
            city: self.city_name.clone(),
            county: self.county.clone(),
            suburb: suburb.clone(),
            neighborhood: format!("{suburb} {suffix}"),
        }
    }

    /// The centre of the named suburb's grid cell plus its half-size, for
    /// building query ranges from a suburb selection (the demo limits
    /// query ranges "to the different suburbs for simplicity").
    #[must_use]
    pub fn suburb_center(&self, suburb: &str) -> Option<(GeoPoint, f64)> {
        let idx =
            (0..self.grid * self.grid).find(|&i| SUBURB_NAMES[i % SUBURB_NAMES.len()] == suburb)?;
        let gx = idx % self.grid;
        let gy = idx / self.grid;
        let cell_km = 2.0 * self.half_extent_km / self.grid as f64;
        let cx = -self.half_extent_km + (gx as f64 + 0.5) * cell_km;
        let cy = -self.half_extent_km + (gy as f64 + 0.5) * cell_km;
        Some((self.center.offset_km(cy, cx), cell_km / 2.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CITIES;

    #[test]
    fn locate_is_deterministic_and_city_correct() {
        let g = ReverseGeocoder::for_city(&CITIES[1]); // Nashville
        let p = CITIES[1].center();
        let a1 = g.locate(&p);
        let a2 = g.locate(&p);
        assert_eq!(a1, a2);
        assert_eq!(a1.city, "Nashville");
        assert_eq!(a1.county, "Davidson County");
    }

    #[test]
    fn nearby_points_share_suburb() {
        let g = ReverseGeocoder::for_city(&CITIES[0]);
        let p = CITIES[0].center();
        let q = p.offset_km(0.1, 0.1);
        assert_eq!(g.locate(&p).suburb, g.locate(&q).suburb);
    }

    #[test]
    fn distant_points_differ() {
        let g = ReverseGeocoder::for_city(&CITIES[0]);
        let p = CITIES[0].center();
        let q = p.offset_km(9.0, 9.0);
        assert_ne!(g.locate(&p).suburb, g.locate(&q).suburb);
    }

    #[test]
    fn far_outside_clamps_to_border_cell() {
        let g = ReverseGeocoder::for_city(&CITIES[0]);
        let q = CITIES[0].center().offset_km(500.0, 500.0);
        // No panic; lands in a border suburb.
        let a = g.locate(&q);
        assert!(!a.suburb.is_empty());
    }

    #[test]
    fn suburb_center_round_trips() {
        let g = ReverseGeocoder::for_city(&CITIES[2]);
        for s in g.suburbs().iter().take(4) {
            let (center, _half) = g.suburb_center(s).unwrap();
            assert_eq!(&g.locate(&center).suburb, s);
        }
    }

    #[test]
    fn unknown_suburb_is_none() {
        let g = ReverseGeocoder::for_city(&CITIES[0]);
        assert!(g.suburb_center("Nowhere Land").is_none());
    }
}

//! Business archetypes: the generative grammar of the synthetic city.
//!
//! An archetype fixes a POI's Yelp-style category string, the words its
//! name may contain, its *core* concepts (always present) and a pool of
//! *optional* concepts (sampled per POI). Optional concepts are what make
//! same-category POIs semantically distinct — the "variety of sushi
//! options" that separates one Japanese restaurant from another.

/// One business archetype.
#[derive(Debug, Clone, Copy)]
pub struct Archetype {
    /// Stable key.
    pub key: &'static str,
    /// Yelp-style `categories` attribute value.
    pub categories: &'static str,
    /// Words usable in generated names ("Grill", "Tap House", …).
    pub type_words: &'static [&'static str],
    /// Concept names every POI of this archetype holds.
    pub core: &'static [&'static str],
    /// Concept-name pool sampled per POI (2–4 picks).
    pub optional: &'static [&'static str],
    /// Sampling weight (relative frequency in a city).
    pub weight: u32,
}

/// Service/amenity concepts any POI may additionally pick up.
pub const GLOBAL_OPTIONAL: &[&str] = &[
    "friendly-staff",
    "fast-service",
    "affordable-prices",
    "clean-space",
    "long-waits",
    "popular-busy",
    "parking-available",
    "takeout-delivery",
    "family-friendly",
    "outdoor-seating",
    "free-wifi",
    "large-portions",
    "late-night-hours",
    "open-early",
    "wheelchair-accessible",
];

/// The archetype catalogue (~40 business kinds, food-heavy like Yelp).
pub const ARCHETYPES: &[Archetype] = &[
    Archetype {
        key: "sports_bar",
        categories: "Bars, Sports Bars, American (Traditional), Nightlife",
        type_words: &["Bar & Grill", "Sports Bar", "Taproom", "Grill"],
        core: &["live-sports-viewing", "bar-venue", "beer-selection"],
        optional: &[
            "chicken-wings",
            "burgers",
            "billiards-darts",
            "trivia-night",
            "craft-beer",
            "whiskey-selection",
        ],
        weight: 5,
    },
    Archetype {
        key: "dive_bar",
        categories: "Bars, Dive Bars, Nightlife",
        type_words: &["Tavern", "Bar", "Lounge"],
        core: &["dive-bar-vibe", "bar-venue"],
        optional: &[
            "beer-selection",
            "billiards-darts",
            "live-music",
            "karaoke",
            "whiskey-selection",
        ],
        weight: 3,
    },
    Archetype {
        key: "cocktail_bar",
        categories: "Bars, Cocktail Bars, Lounges, Nightlife",
        type_words: &["Lounge", "Bar", "Parlor"],
        core: &["cocktails", "bar-venue"],
        optional: &[
            "trendy-hip",
            "romantic-setting",
            "rooftop-view",
            "live-music",
            "whiskey-selection",
            "wine-list",
        ],
        weight: 3,
    },
    Archetype {
        key: "brewery",
        categories: "Breweries, Beer Bar, Food",
        type_words: &["Brewing Co", "Brewery", "Beer Works", "Taproom"],
        core: &["craft-beer", "bar-venue"],
        optional: &[
            "outdoor-seating",
            "dog-friendly",
            "trivia-night",
            "live-music",
            "burgers",
        ],
        weight: 3,
    },
    Archetype {
        key: "wine_bar",
        categories: "Wine Bars, Bars, Nightlife",
        type_words: &["Wine Bar", "Cellar", "Vines"],
        core: &["wine-list", "bar-venue"],
        optional: &[
            "romantic-setting",
            "cozy-atmosphere",
            "upscale-expensive",
            "cocktails",
        ],
        weight: 2,
    },
    Archetype {
        key: "cafe",
        categories: "Coffee & Tea, Cafes, Breakfast & Brunch",
        type_words: &["Cafe", "Coffee Co", "Coffee House", "Roasters"],
        core: &["coffee-specialty"],
        optional: &[
            "espresso-drinks",
            "pastries",
            "quiet-study-spot",
            "breakfast-brunch",
            "cozy-atmosphere",
            "tea-selection",
            "bagels",
        ],
        weight: 6,
    },
    Archetype {
        key: "bakery",
        categories: "Bakeries, Food, Desserts",
        type_words: &["Bakery", "Bakehouse", "Patisserie"],
        core: &["pastries"],
        optional: &[
            "desserts",
            "coffee-specialty",
            "breakfast-brunch",
            "donuts",
            "gluten-free-options",
        ],
        weight: 3,
    },
    Archetype {
        key: "pizzeria",
        categories: "Pizza, Italian, Restaurants",
        type_words: &["Pizza", "Pizzeria", "Pizza Co"],
        core: &["pizza"],
        optional: &[
            "italian-cuisine",
            "craft-beer",
            "salads",
            "vegetarian-options",
            "gluten-free-options",
        ],
        weight: 5,
    },
    Archetype {
        key: "italian",
        categories: "Italian, Restaurants",
        type_words: &["Trattoria", "Ristorante", "Osteria", "Kitchen"],
        core: &["italian-cuisine"],
        optional: &[
            "wine-list",
            "romantic-setting",
            "pizza",
            "desserts",
            "upscale-expensive",
            "fresh-ingredients",
        ],
        weight: 3,
    },
    Archetype {
        key: "mexican",
        categories: "Mexican, Restaurants",
        type_words: &["Taqueria", "Cantina", "Cocina"],
        core: &["mexican-cuisine", "tacos"],
        optional: &["cocktails", "vegetarian-options", "fast-service", "curry"],
        weight: 4,
    },
    Archetype {
        key: "sushi",
        categories: "Japanese, Sushi Bars, Restaurants",
        type_words: &["Sushi", "Sushi Bar", "Izakaya"],
        core: &["japanese-cuisine", "sushi"],
        optional: &[
            "sushi-variety",
            "ramen",
            "upscale-expensive",
            "fresh-ingredients",
            "romantic-setting",
        ],
        weight: 3,
    },
    Archetype {
        key: "ramen",
        categories: "Japanese, Ramen, Noodles, Restaurants",
        type_words: &["Ramen", "Noodle House", "Ramen Bar"],
        core: &["japanese-cuisine", "ramen"],
        optional: &["fast-service", "late-night-hours", "vegetarian-options"],
        weight: 2,
    },
    Archetype {
        key: "chinese",
        categories: "Chinese, Restaurants",
        type_words: &["Garden", "Palace", "House", "Wok"],
        core: &["chinese-cuisine"],
        optional: &[
            "takeout-delivery",
            "vegetarian-options",
            "large-portions",
            "affordable-prices",
            "tea-selection",
        ],
        weight: 3,
    },
    Archetype {
        key: "thai",
        categories: "Thai, Restaurants",
        type_words: &["Thai Kitchen", "Thai House", "Basil"],
        core: &["thai-cuisine", "curry"],
        optional: &["vegan-friendly", "vegetarian-options", "affordable-prices"],
        weight: 2,
    },
    Archetype {
        key: "indian",
        categories: "Indian, Restaurants",
        type_words: &["Curry House", "Tandoor", "Spice"],
        core: &["indian-cuisine", "curry"],
        optional: &[
            "vegetarian-options",
            "vegan-friendly",
            "large-portions",
            "variety-of-options",
        ],
        weight: 2,
    },
    Archetype {
        key: "vietnamese",
        categories: "Vietnamese, Restaurants, Soup",
        type_words: &["Pho", "Saigon Kitchen", "Banh Mi"],
        core: &["vietnamese-cuisine", "pho"],
        optional: &[
            "sandwiches",
            "fast-service",
            "affordable-prices",
            "fresh-ingredients",
        ],
        weight: 2,
    },
    Archetype {
        key: "korean_bbq",
        categories: "Korean, Barbeque, Restaurants",
        type_words: &["Korean BBQ", "K-Grill", "Seoul Kitchen"],
        core: &["korean-cuisine"],
        optional: &[
            "variety-of-options",
            "large-portions",
            "trendy-hip",
            "late-night-hours",
        ],
        weight: 2,
    },
    Archetype {
        key: "bbq_joint",
        categories: "Barbeque, Smokehouse, Restaurants",
        type_words: &["BBQ", "Smokehouse", "Pit", "Smoke Shack"],
        core: &["bbq-smokehouse", "bbq-ribs"],
        optional: &[
            "craft-beer",
            "large-portions",
            "fried-chicken",
            "popular-busy",
        ],
        weight: 3,
    },
    Archetype {
        key: "burger_joint",
        categories: "Burgers, Fast Food, American (Traditional), Restaurants",
        type_words: &["Burger", "Burger Bar", "Patty Shack"],
        core: &["burgers"],
        optional: &[
            "milkshakes",
            "fast-service",
            "drive-through",
            "fried-chicken",
            "late-night-hours",
        ],
        weight: 4,
    },
    Archetype {
        key: "diner",
        categories: "Diners, Breakfast & Brunch, American (Traditional), Restaurants",
        type_words: &["Diner", "Grill", "Lunch Counter"],
        core: &["american-diner", "breakfast-brunch"],
        optional: &[
            "pancakes-waffles",
            "open-early",
            "large-portions",
            "affordable-prices",
            "milkshakes",
        ],
        weight: 4,
    },
    Archetype {
        key: "steakhouse",
        categories: "Steakhouses, American (New), Restaurants",
        type_words: &["Steakhouse", "Chop House", "Prime"],
        core: &["steakhouse"],
        optional: &[
            "upscale-expensive",
            "wine-list",
            "whiskey-selection",
            "romantic-setting",
            "reservations-recommended",
        ],
        weight: 2,
    },
    Archetype {
        key: "seafood",
        categories: "Seafood, Restaurants",
        type_words: &["Fish House", "Oyster Bar", "Catch"],
        core: &["seafood-restaurant"],
        optional: &[
            "oysters",
            "waterfront-view",
            "upscale-expensive",
            "fresh-ingredients",
            "cocktails",
        ],
        weight: 2,
    },
    Archetype {
        key: "vegan_cafe",
        categories: "Vegan, Vegetarian, Health Markets, Restaurants",
        type_words: &["Greens", "Sprout", "Harvest Kitchen"],
        core: &["vegan-friendly", "healthy-options"],
        optional: &[
            "smoothies-juice",
            "salads",
            "gluten-free-options",
            "fresh-ingredients",
            "coffee-specialty",
        ],
        weight: 2,
    },
    Archetype {
        key: "mediterranean",
        categories: "Mediterranean, Middle Eastern, Greek, Restaurants",
        type_words: &["Kitchen", "Grill", "Taverna", "Shawarma House"],
        core: &["mediterranean-cuisine"],
        optional: &[
            "greek-cuisine",
            "vegetarian-options",
            "healthy-options",
            "fast-service",
            "salads",
        ],
        weight: 2,
    },
    Archetype {
        key: "ice_cream",
        categories: "Ice Cream & Frozen Yogurt, Desserts, Food",
        type_words: &["Ice Cream", "Creamery", "Scoops", "Gelato"],
        core: &["ice-cream", "desserts"],
        optional: &[
            "milkshakes",
            "family-friendly",
            "late-night-hours",
            "donuts",
        ],
        weight: 3,
    },
    Archetype {
        key: "donut_shop",
        categories: "Donuts, Coffee & Tea, Food",
        type_words: &["Donuts", "Doughnut Co", "Glaze"],
        core: &["donuts"],
        optional: &["coffee-specialty", "open-early", "bagels", "drive-through"],
        weight: 2,
    },
    Archetype {
        key: "bubble_tea",
        categories: "Bubble Tea, Coffee & Tea, Food",
        type_words: &["Boba", "Tea House", "Bubble Tea"],
        core: &["bubble-tea"],
        optional: &["tea-selection", "trendy-hip", "smoothies-juice", "desserts"],
        weight: 2,
    },
    Archetype {
        key: "deli",
        categories: "Delis, Sandwiches, Restaurants",
        type_words: &["Deli", "Sandwich Shop", "Subs"],
        core: &["sandwiches"],
        optional: &[
            "bagels",
            "fast-service",
            "salads",
            "affordable-prices",
            "open-early",
        ],
        weight: 3,
    },
    Archetype {
        key: "music_venue",
        categories: "Music Venues, Bars, Nightlife, Arts & Entertainment",
        type_words: &["Hall", "Stage", "Room"],
        core: &["live-music"],
        optional: &[
            "bar-venue",
            "cocktails",
            "dancing-club",
            "historic-charm",
            "craft-beer",
        ],
        weight: 2,
    },
    Archetype {
        key: "auto_repair",
        categories: "Automotive, Auto Repair, Oil Change Stations, Auto Parts & Supplies",
        type_words: &["Auto Care", "Auto Repair", "Garage", "Motors"],
        core: &["auto-repair"],
        optional: &[
            "oil-change",
            "tire-service",
            "auto-parts",
            "friendly-staff",
            "fast-service",
        ],
        weight: 3,
    },
    Archetype {
        key: "tire_shop",
        categories: "Automotive, Tires, Auto Repair",
        type_words: &["Tire", "Tire & Auto", "Wheel Works"],
        core: &["tire-service"],
        optional: &[
            "oil-change",
            "auto-parts",
            "fast-service",
            "affordable-prices",
        ],
        weight: 2,
    },
    Archetype {
        key: "car_wash",
        categories: "Automotive, Car Wash, Auto Detailing",
        type_words: &["Car Wash", "Shine", "Detail Co"],
        core: &["car-wash"],
        optional: &["fast-service", "affordable-prices", "friendly-staff"],
        weight: 1,
    },
    Archetype {
        key: "hair_salon",
        categories: "Beauty & Spas, Hair Salons",
        type_words: &["Salon", "Hair Studio", "Styles"],
        core: &["hair-salon"],
        optional: &["nail-salon", "friendly-staff", "trendy-hip", "clean-space"],
        weight: 3,
    },
    Archetype {
        key: "barber",
        categories: "Beauty & Spas, Barbers",
        type_words: &["Barber Shop", "Barbers", "Cuts"],
        core: &["barber-shop"],
        optional: &["historic-charm", "friendly-staff", "affordable-prices"],
        weight: 2,
    },
    Archetype {
        key: "nail_salon",
        categories: "Beauty & Spas, Nail Salons",
        type_words: &["Nails", "Nail Bar", "Polish"],
        core: &["nail-salon"],
        optional: &["spa-massage", "clean-space", "friendly-staff"],
        weight: 2,
    },
    Archetype {
        key: "spa",
        categories: "Beauty & Spas, Day Spas, Massage",
        type_words: &["Spa", "Wellness", "Retreat"],
        core: &["spa-massage"],
        optional: &[
            "nail-salon",
            "upscale-expensive",
            "clean-space",
            "quiet-study-spot",
        ],
        weight: 2,
    },
    Archetype {
        key: "gym",
        categories: "Fitness & Instruction, Gyms, Active Life",
        type_words: &["Fitness", "Gym", "Strength Co"],
        core: &["gym-fitness"],
        optional: &[
            "yoga-studio",
            "open-early",
            "late-night-hours",
            "clean-space",
            "friendly-staff",
        ],
        weight: 3,
    },
    Archetype {
        key: "yoga",
        categories: "Yoga, Fitness & Instruction, Active Life",
        type_words: &["Yoga", "Flow Studio", "Mat House"],
        core: &["yoga-studio"],
        optional: &[
            "gym-fitness",
            "quiet-study-spot",
            "clean-space",
            "healthy-options",
        ],
        weight: 2,
    },
    Archetype {
        key: "grocery",
        categories: "Grocery, Food, Shopping",
        type_words: &["Market", "Grocery", "Foods"],
        core: &["grocery-store"],
        optional: &[
            "fresh-ingredients",
            "affordable-prices",
            "parking-available",
            "healthy-options",
        ],
        weight: 3,
    },
    Archetype {
        key: "bookstore",
        categories: "Books, Mags, Music & Video, Bookstores, Shopping",
        type_words: &["Books", "Book Shop", "Pages"],
        core: &["bookstore"],
        optional: &[
            "coffee-specialty",
            "quiet-study-spot",
            "cozy-atmosphere",
            "thrift-vintage",
        ],
        weight: 2,
    },
    Archetype {
        key: "florist",
        categories: "Flowers & Gifts, Florists, Shopping",
        type_words: &["Florist", "Blooms", "Petals"],
        core: &["florist"],
        optional: &["friendly-staff", "jewelry-store"],
        weight: 1,
    },
    Archetype {
        key: "pharmacy",
        categories: "Health & Medical, Pharmacy, Drugstores",
        type_words: &["Pharmacy", "Drugs", "Apothecary"],
        core: &["pharmacy"],
        optional: &["fast-service", "friendly-staff", "parking-available"],
        weight: 2,
    },
    Archetype {
        key: "hardware",
        categories: "Hardware Stores, Home & Garden, Shopping",
        type_words: &["Hardware", "Home Supply", "Tool Co"],
        core: &["hardware-store"],
        optional: &["friendly-staff", "parking-available", "variety-of-options"],
        weight: 2,
    },
    Archetype {
        key: "boutique",
        categories: "Women's Clothing, Fashion, Shopping",
        type_words: &["Boutique", "Closet", "Thread Co"],
        core: &["clothing-boutique"],
        optional: &[
            "thrift-vintage",
            "jewelry-store",
            "trendy-hip",
            "friendly-staff",
        ],
        weight: 2,
    },
    Archetype {
        key: "thrift",
        categories: "Thrift Stores, Used, Vintage & Consignment, Shopping",
        type_words: &["Thrift", "Vintage", "Second Story"],
        core: &["thrift-vintage"],
        optional: &["bookstore", "affordable-prices", "variety-of-options"],
        weight: 2,
    },
    Archetype {
        key: "hotel",
        categories: "Hotels, Event Planning & Services, Hotels & Travel",
        type_words: &["Hotel", "Inn", "Suites"],
        core: &["hotel-lodging"],
        optional: &[
            "upscale-expensive",
            "historic-charm",
            "rooftop-view",
            "friendly-staff",
            "private-rooms",
        ],
        weight: 2,
    },
    Archetype {
        key: "museum",
        categories: "Museums, Arts & Entertainment",
        type_words: &["Museum", "Gallery", "Collection"],
        core: &["museum-gallery"],
        optional: &["historic-charm", "family-friendly", "quiet-study-spot"],
        weight: 1,
    },
    Archetype {
        key: "park",
        categories: "Parks, Active Life",
        type_words: &["Park", "Green", "Commons"],
        core: &["park-trails"],
        optional: &[
            "playground",
            "dog-friendly",
            "family-friendly",
            "waterfront-view",
        ],
        weight: 2,
    },
    Archetype {
        key: "movie_theater",
        categories: "Cinema, Arts & Entertainment",
        type_words: &["Cinema", "Theater", "Pictures"],
        core: &["movie-theater"],
        optional: &["family-friendly", "late-night-hours", "arcade-games"],
        weight: 1,
    },
    Archetype {
        key: "urgent_care",
        categories: "Health & Medical, Urgent Care, Walk-in Clinics",
        type_words: &["Urgent Care", "Clinic", "Walk-In Care"],
        core: &["urgent-care"],
        optional: &[
            "fast-service",
            "friendly-staff",
            "clean-space",
            "open-early",
        ],
        weight: 1,
    },
    Archetype {
        key: "dentist",
        categories: "Health & Medical, Dentists, General Dentistry",
        type_words: &["Dental", "Smiles", "Family Dentistry"],
        core: &["dental-care"],
        optional: &["friendly-staff", "clean-space", "family-friendly"],
        weight: 2,
    },
    Archetype {
        key: "tattoo",
        categories: "Beauty & Spas, Tattoo, Piercing",
        type_words: &["Tattoo", "Ink Studio", "Needle & Rose"],
        core: &["tattoo-studio"],
        optional: &["trendy-hip", "clean-space", "friendly-staff"],
        weight: 1,
    },
    Archetype {
        key: "pet_store",
        categories: "Pet Stores, Pet Services, Pets",
        type_words: &["Pet Supply", "Paws", "Pet Co"],
        core: &["pet-supplies"],
        optional: &["dog-friendly", "friendly-staff", "variety-of-options"],
        weight: 1,
    },
    Archetype {
        key: "bowling",
        categories: "Bowling, Active Life, Arts & Entertainment",
        type_words: &["Lanes", "Bowl", "Alley"],
        core: &["bowling"],
        optional: &[
            "arcade-games",
            "bar-venue",
            "family-friendly",
            "late-night-hours",
        ],
        weight: 1,
    },
    Archetype {
        key: "golf",
        categories: "Golf, Active Life",
        type_words: &["Golf Club", "Links", "Fairways"],
        core: &["golf-course"],
        optional: &["outdoor-seating", "upscale-expensive", "bar-venue"],
        weight: 1,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use concepts::Ontology;

    #[test]
    fn catalogue_is_large_and_keys_unique() {
        assert!(ARCHETYPES.len() >= 40);
        let mut keys: Vec<&str> = ARCHETYPES.iter().map(|a| a.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), ARCHETYPES.len());
    }

    #[test]
    fn all_concept_names_resolve() {
        let o = Ontology::builtin();
        for a in ARCHETYPES {
            for name in a.core.iter().chain(a.optional) {
                assert!(
                    o.id(name).is_some(),
                    "unknown concept `{name}` in `{}`",
                    a.key
                );
            }
        }
        for name in GLOBAL_OPTIONAL {
            assert!(o.id(name).is_some(), "unknown global concept `{name}`");
        }
    }

    #[test]
    fn every_archetype_has_core_and_name_words() {
        for a in ARCHETYPES {
            assert!(!a.core.is_empty(), "{} has no core concepts", a.key);
            assert!(!a.type_words.is_empty(), "{} has no type words", a.key);
            assert!(a.weight > 0);
        }
    }

    #[test]
    fn food_archetypes_dominate_by_weight() {
        // Yelp is food-heavy; keep the synthetic city that way.
        let food_keys = [
            "sports_bar",
            "cafe",
            "pizzeria",
            "burger_joint",
            "diner",
            "mexican",
            "bakery",
        ];
        let food_weight: u32 = ARCHETYPES
            .iter()
            .filter(|a| food_keys.contains(&a.key))
            .map(|a| a.weight)
            .sum();
        let total: u32 = ARCHETYPES.iter().map(|a| a.weight).sum();
        assert!(f64::from(food_weight) / f64::from(total) > 0.20);
    }
}

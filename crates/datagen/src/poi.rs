//! POI generation: assembling full Yelp-shaped records for one city.

use std::collections::BTreeMap;

use concepts::{ConceptId, Ontology};
use geotext::{AttributeValue, Dataset, GeoTextObject, ObjectId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::city::City;
use crate::names::{generate_name, generate_street_address, NameStyle};
use crate::taxonomy::{Archetype, ARCHETYPES, GLOBAL_OPTIONAL};
use crate::tips::generate_tips;

/// A generated city: the dataset plus its latent ground truth.
#[derive(Debug)]
pub struct CityData {
    /// Which city this is.
    pub city: City,
    /// The Yelp-shaped dataset (attributes per paper Table 1).
    pub dataset: Dataset,
    /// Latent concepts per POI (`truth[id.index()]`) — the generator's
    /// ground truth, standing in for the paper's manual annotation.
    pub truth: Vec<Vec<ConceptId>>,
    /// Name style per POI (descriptive vs opaque), for Figure-1 slicing.
    pub name_styles: Vec<NameStyle>,
    /// Archetype index (into [`ARCHETYPES`]) per POI.
    pub archetype_idx: Vec<usize>,
}

impl CityData {
    /// The latent concepts of one POI.
    #[must_use]
    pub fn concepts_of(&self, id: ObjectId) -> &[ConceptId] {
        &self.truth[id.index()]
    }

    /// The archetype of one POI.
    #[must_use]
    pub fn archetype_of(&self, id: ObjectId) -> &'static Archetype {
        &ARCHETYPES[self.archetype_idx[id.index()]]
    }
}

/// Approximate standard normal via the sum of 12 uniforms (Irwin–Hall).
fn gaussian(rng: &mut StdRng) -> f64 {
    let s: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
    s - 6.0
}

fn pick_archetype(rng: &mut StdRng) -> usize {
    let total: u32 = ARCHETYPES.iter().map(|a| a.weight).sum();
    let mut roll = rng.gen_range(0..total);
    for (i, a) in ARCHETYPES.iter().enumerate() {
        if roll < a.weight {
            return i;
        }
        roll -= a.weight;
    }
    ARCHETYPES.len() - 1
}

fn generate_hours(archetype: &Archetype, rng: &mut StdRng) -> BTreeMap<String, String> {
    let is_bar =
        archetype.categories.contains("Bars") || archetype.categories.contains("Nightlife");
    let is_breakfast =
        archetype.categories.contains("Breakfast") || archetype.categories.contains("Coffee");
    let (open, close) = if is_bar {
        (11 + rng.gen_range(0..5), 23 + rng.gen_range(0..3)) // close may be past midnight
    } else if is_breakfast {
        (5 + rng.gen_range(0..3), 15 + rng.gen_range(0..5))
    } else {
        (8 + rng.gen_range(0..3), 17 + rng.gen_range(0..5))
    };
    let close = close % 24;
    let mut hours = BTreeMap::new();
    for day in [
        "Monday",
        "Tuesday",
        "Wednesday",
        "Thursday",
        "Friday",
        "Saturday",
        "Sunday",
    ] {
        // Some venues close one weekday, like the paper's sample record.
        if day == "Monday" && rng.gen_bool(0.15) {
            hours.insert(day.to_owned(), "0:0-0:0".to_owned());
        } else {
            hours.insert(day.to_owned(), format!("{open}:0-{close}:0"));
        }
    }
    hours
}

/// Deterministic Yelp-style business id.
fn business_id(city_key: &str, index: usize) -> String {
    let h = concepts::hash::mix(&[concepts::hash::fnv1a(city_key.as_bytes()), index as u64]);
    format!("{h:016x}{:06}", index)
}

/// Generates `count` POIs for `city`. Deterministic in `(city, count,
/// seed)`.
#[must_use]
pub fn generate_city(city: &City, count: usize, seed: u64) -> CityData {
    let ontology = Ontology::builtin();
    let mut rng = StdRng::seed_from_u64(seed ^ concepts::hash::fnv1a(city.key.as_bytes()));
    let center = city.center();

    let mut dataset = Dataset::new(city.name);
    let mut truth: Vec<Vec<ConceptId>> = Vec::with_capacity(count);
    let mut name_styles = Vec::with_capacity(count);
    let mut archetype_idx = Vec::with_capacity(count);

    for i in 0..count {
        let ai = pick_archetype(&mut rng);
        let archetype = &ARCHETYPES[ai];

        // Location: gaussian scatter (σ ≈ 4 km) truncated to ±11 km so
        // every POI stays inside the geocoder's extent.
        let dy = (gaussian(&mut rng) * 4.0).clamp(-11.0, 11.0);
        let dx = (gaussian(&mut rng) * 4.0).clamp(-11.0, 11.0);
        let location = center.offset_km(dy, dx);

        // Latent concepts: all core + 1–3 optional + 1–2 global service.
        let mut concepts_held: Vec<ConceptId> =
            archetype.core.iter().map(|n| ontology.id_of(n)).collect();
        let n_opt = rng.gen_range(1..=3usize).min(archetype.optional.len());
        let mut opt_pool: Vec<&str> = archetype.optional.to_vec();
        for _ in 0..n_opt {
            if opt_pool.is_empty() {
                break;
            }
            let j = rng.gen_range(0..opt_pool.len());
            concepts_held.push(ontology.id_of(opt_pool.swap_remove(j)));
        }
        let n_glob = rng.gen_range(1..=2usize);
        for _ in 0..n_glob {
            let g = GLOBAL_OPTIONAL[rng.gen_range(0..GLOBAL_OPTIONAL.len())];
            let id = ontology.id_of(g);
            if !concepts_held.contains(&id) {
                concepts_held.push(id);
            }
        }
        concepts_held.sort();
        concepts_held.dedup();

        let (name, style) = generate_name(archetype, &mut rng);
        let tips = generate_tips(&concepts_held, ontology, &mut rng);
        let stars = (rng.gen_range(2..=10) as f64) / 2.0; // 1.0..=5.0 in halves
        let hours = generate_hours(archetype, &mut rng);
        let address = generate_street_address(&mut rng);
        let tip_count = tips.len() as i64;

        dataset.push(|id| {
            GeoTextObject::builder(id, location)
                .attr("business_id", business_id(city.key, i))
                .attr("name", name.clone())
                .attr("address", address.clone())
                .attr("city", city.name)
                .attr("state", city.state)
                .attr("stars", stars)
                .attr("tip_count", tip_count)
                .attr("is_open", rng.gen_bool(0.9))
                .attr("categories", archetype.categories)
                .attr("hours", AttributeValue::Map(hours.clone()))
                .attr("tips", tips.clone())
                .build()
                .expect("generated POI always has textual attributes")
        });
        truth.push(concepts_held);
        name_styles.push(style);
        archetype_idx.push(ai);
    }

    CityData {
        city: *city,
        dataset,
        truth,
        name_styles,
        archetype_idx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CITIES;
    use concepts::ConceptDetector;

    #[test]
    fn generates_requested_count_with_dense_ids() {
        let data = generate_city(&CITIES[3], 200, 42);
        assert_eq!(data.dataset.len(), 200);
        assert_eq!(data.truth.len(), 200);
        assert_eq!(data.dataset.objects()[57].id, ObjectId(57));
    }

    #[test]
    fn deterministic() {
        let a = generate_city(&CITIES[0], 100, 7);
        let b = generate_city(&CITIES[0], 100, 7);
        assert_eq!(a.dataset.objects()[33], b.dataset.objects()[33]);
        assert_eq!(a.truth[33], b.truth[33]);
    }

    #[test]
    fn different_cities_differ() {
        let a = generate_city(&CITIES[0], 50, 7);
        let b = generate_city(&CITIES[1], 50, 7);
        assert_ne!(a.dataset.objects()[0].name(), b.dataset.objects()[0].name());
    }

    #[test]
    fn pois_stay_near_city_center() {
        let data = generate_city(&CITIES[2], 300, 1);
        let center = CITIES[2].center();
        for o in data.dataset.iter() {
            assert!(center.haversine_km(&o.location) < 17.0);
        }
    }

    #[test]
    fn records_have_paper_schema() {
        let data = generate_city(&CITIES[1], 20, 3);
        let o = &data.dataset.objects()[0];
        for key in [
            "business_id",
            "name",
            "address",
            "city",
            "state",
            "stars",
            "tip_count",
            "is_open",
            "categories",
            "hours",
            "tips",
        ] {
            assert!(o.attrs.get(key).is_some(), "missing attribute {key}");
        }
        assert_eq!(o.attrs.get_text("city"), Some("Nashville"));
    }

    #[test]
    fn dataset_stats_match_paper_shape() {
        let data = generate_city(&CITIES[0], 500, 11);
        let stats = data.dataset.stats();
        assert!(
            (9.0..=13.0).contains(&stats.avg_tips_per_object),
            "avg tips {}",
            stats.avg_tips_per_object
        );
        assert!(
            (70.0..=220.0).contains(&stats.avg_tip_tokens_per_object),
            "avg tip tokens {}",
            stats.avg_tip_tokens_per_object
        );
    }

    #[test]
    fn latent_concepts_recoverable_from_text() {
        let data = generate_city(&CITIES[4], 50, 13);
        let detector = ConceptDetector::builtin();
        let ontology = Ontology::builtin();
        for o in data.dataset.iter() {
            let found = detector.detect_ids(&o.to_document());
            for c in data.concepts_of(o.id) {
                assert!(
                    ontology.satisfies(&found, *c) || found.contains(c),
                    "POI {} lost concept {}",
                    o.name(),
                    ontology.concept(*c).name
                );
            }
        }
    }

    #[test]
    fn truth_includes_core_concepts() {
        let data = generate_city(&CITIES[0], 100, 5);
        let ontology = Ontology::builtin();
        for (i, o) in data.dataset.iter().enumerate() {
            let archetype = data.archetype_of(o.id);
            for core in archetype.core {
                assert!(
                    data.truth[i].contains(&ontology.id_of(core)),
                    "POI missing core concept {core}"
                );
            }
        }
    }
}

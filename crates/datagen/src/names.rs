//! POI name generation.
//!
//! Three naming patterns, matching how real venues are named:
//!
//! 1. `"{Owner}'s {TypeWord}"` — contains the category word ("Rosie's
//!    Cafe"),
//! 2. `"{Adjective} {TypeWord}"` — contains the category word ("Golden
//!    Grill"),
//! 3. **opaque** — `"{EvocativeA} {EvocativeB}"` with *no* category word
//!    ("Industry Beans"). These are the POIs that pure keyword matching
//!    misses — the paper's Figure 1 motivation.

use rand::rngs::StdRng;
use rand::Rng;

use crate::taxonomy::Archetype;

const OWNERS: &[&str] = &[
    "Rosie", "Mike", "Sal", "Maria", "Hank", "June", "Leo", "Priya", "Omar", "Gus", "Dot",
    "Frankie", "Nina", "Ray", "Lola", "Marco", "Ivy", "Joe", "Stella", "Max", "Ruby", "Ana",
    "Teddy", "Wanda", "Felix", "Mabel", "Otis", "Pearl", "Hugo", "Greta",
];

const ADJECTIVES: &[&str] = &[
    "Golden",
    "Blue Door",
    "Silver",
    "Lucky",
    "Old Town",
    "Union",
    "Royal",
    "Sunny",
    "Copper",
    "Broad Street",
    "Midtown",
    "Crosstown",
    "Riverside",
    "Hilltop",
    "Cornerstone",
    "Twin Oaks",
    "Redbrick",
    "Ironwood",
    "Harbor",
    "Summit",
    "Prairie",
    "Magnolia",
    "Cedar",
    "Walnut",
    "Fiveway",
    "Northside",
    "Southern",
    "Grand",
    "Little",
    "Velvet",
];

const EVOCATIVE_A: &[&str] = &[
    "Industry",
    "Anchor",
    "Crane",
    "Harvest",
    "Ember",
    "Drift",
    "Folk",
    "Hollow",
    "Wren",
    "Juniper",
    "Atlas",
    "Meridian",
    "Paper",
    "Stone",
    "Fable",
    "Garland",
    "Noble",
    "Quill",
    "Raven",
    "Sparrow",
    "Thistle",
    "Vagabond",
    "Willow",
    "Zephyr",
    "Cobalt",
    "Dandelion",
];

const EVOCATIVE_B: &[&str] = &[
    "Beans",
    "& Co",
    "Social",
    "Collective",
    "Works",
    "Supply",
    "Exchange",
    "Project",
    "Standard",
    "Union",
    "House",
    "Hall",
    "Department",
    "Society",
    "Club",
    "Room",
    "Post",
    "Mercantile",
    "Commons",
    "Parlor",
];

/// How a name was formed — recorded so experiments can slice results by
/// name opacity (the Figure-1 analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameStyle {
    /// Name contains the archetype's category word.
    Descriptive,
    /// Name is evocative and category-free.
    Opaque,
}

/// Generates a `(name, style)` pair for an archetype.
pub fn generate_name(archetype: &Archetype, rng: &mut StdRng) -> (String, NameStyle) {
    let roll: f64 = rng.gen();
    if roll < 0.40 {
        let owner = OWNERS[rng.gen_range(0..OWNERS.len())];
        let word = archetype.type_words[rng.gen_range(0..archetype.type_words.len())];
        (format!("{owner}'s {word}"), NameStyle::Descriptive)
    } else if roll < 0.70 {
        let adj = ADJECTIVES[rng.gen_range(0..ADJECTIVES.len())];
        let word = archetype.type_words[rng.gen_range(0..archetype.type_words.len())];
        (format!("{adj} {word}"), NameStyle::Descriptive)
    } else {
        let a = EVOCATIVE_A[rng.gen_range(0..EVOCATIVE_A.len())];
        let b = EVOCATIVE_B[rng.gen_range(0..EVOCATIVE_B.len())];
        (format!("{a} {b}"), NameStyle::Opaque)
    }
}

/// Street names for partial addresses.
pub const STREETS: &[&str] = &[
    "2nd Ave N",
    "Main St",
    "Market St",
    "Broad St",
    "Washington Ave",
    "College St",
    "Church St",
    "Union Ave",
    "5th St",
    "Oak St",
    "State St",
    "Walnut St",
    "Chestnut St",
    "Grand Blvd",
    "Jefferson Ave",
    "Monroe St",
    "Lafayette Rd",
    "Meridian St",
    "Delmar Blvd",
    "Euclid Ave",
];

/// Generates a partial street address (the raw dataset's addresses are
/// incomplete; the geocoder fills in the rest).
pub fn generate_street_address(rng: &mut StdRng) -> String {
    let number = rng.gen_range(100..9999);
    let street = STREETS[rng.gen_range(0..STREETS.len())];
    format!("{number} {street}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::ARCHETYPES;
    use rand::SeedableRng;

    #[test]
    fn names_are_deterministic_per_seed() {
        let a = &ARCHETYPES[0];
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        assert_eq!(generate_name(a, &mut r1), generate_name(a, &mut r2));
    }

    #[test]
    fn opaque_names_avoid_type_words() {
        let cafe = ARCHETYPES.iter().find(|a| a.key == "cafe").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut saw_opaque = false;
        for _ in 0..200 {
            let (name, style) = generate_name(cafe, &mut rng);
            if style == NameStyle::Opaque {
                saw_opaque = true;
                for w in cafe.type_words {
                    assert!(!name.contains(w), "opaque name `{name}` contains `{w}`");
                }
            }
        }
        assert!(saw_opaque);
    }

    #[test]
    fn roughly_thirty_percent_opaque() {
        let a = &ARCHETYPES[0];
        let mut rng = StdRng::seed_from_u64(99);
        let opaque = (0..2000)
            .filter(|_| generate_name(a, &mut rng).1 == NameStyle::Opaque)
            .count();
        let frac = opaque as f64 / 2000.0;
        assert!((0.25..0.35).contains(&frac), "opaque fraction {frac}");
    }

    #[test]
    fn street_addresses_look_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let addr = generate_street_address(&mut rng);
        assert!(addr.split_whitespace().count() >= 2);
        assert!(addr.chars().next().unwrap().is_ascii_digit());
    }
}

//! Evaluation-query generation with ground-truth answer sets.
//!
//! Mirrors the paper's Section 4 procedure: pick a point in the city,
//! form a 5 km × 5 km range around it, pick a target POI inside, generate
//! a query *targeting* that POI whose phrasing avoids the target's
//! surface keywords, and determine the answer set (all in-range POIs that
//! satisfy the query, not just the target). The paper does the last two
//! steps with o1-mini plus manual review; here the latent concepts make
//! both exact.

use concepts::{ConceptId, Ontology};
use geotext::{BoundingBox, ObjectId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::poi::CityData;
use crate::taxonomy::GLOBAL_OPTIONAL;

/// One evaluation query.
#[derive(Debug, Clone)]
pub struct TestQuery {
    /// City key ("IN", …).
    pub city_key: &'static str,
    /// The natural-language query text (`q.T`).
    pub text: String,
    /// The query range (`q.r`), 5 km × 5 km.
    pub range: BoundingBox,
    /// The POI the query was generated from.
    pub target: ObjectId,
    /// The concepts the query requires.
    pub required: Vec<ConceptId>,
    /// Ground-truth answers: in-range POIs whose latent concepts satisfy
    /// all required concepts.
    pub answers: Vec<ObjectId>,
}

/// Query-generation knobs.
#[derive(Debug, Clone)]
pub struct QueryGenConfig {
    /// Queries to harvest per city (paper: 30).
    pub per_city: usize,
    /// Query range edge length in km (paper: 5).
    pub range_km: f64,
    /// Reject queries with more ground-truth answers than this (the
    /// paper's manual filtering keeps answer sets tractable).
    pub max_answers: usize,
    /// Reject queries with fewer answers than this.
    pub min_answers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        Self {
            per_city: 30,
            range_km: 5.0,
            // The paper's answer sets are small — each was manually
            // inspected ("there may be other POIs besides the target
            // POI"), and small ground truths are what give the fixed-k
            // baselines their characteristic low precision in Table 2.
            max_answers: 4,
            min_answers: 1,
            seed: 0xc0ffee,
        }
    }
}

/// Two-aspect templates following the paper's own example ("Find Japanese
/// restaurants … that offer a variety of sushi options"): `{a}` is the
/// *base* aspect stated plainly (keyword-matchable), `{b}` the
/// *distinguishing* aspect stated as a paraphrase (semantics-only).
const TEMPLATES_TWO: &[&str] = &[
    "I'm looking for {a} where there's {b}. Do you have any recommendations?",
    "Find me {a} with {b}.",
    "Where should I go for {a}? Ideally somewhere with {b}.",
    "Any {a} around where I can count on {b}?",
];

const TEMPLATES_ONE: &[&str] = &[
    "I'm looking for a place known for {a}. Any recommendations?",
    "Where can I find {a} around here?",
    "Any suggestions for somewhere with {a}?",
];

/// Picks a paraphrase for `concept` that does not literally occur in
/// `avoid_text` (lowercase). Falls back to the prettified name.
fn covert_phrase(
    ontology: &Ontology,
    concept: ConceptId,
    avoid_text: &str,
    rng: &mut StdRng,
) -> String {
    let c = ontology.concept(concept);
    let mut candidates: Vec<&str> = c
        .paraphrases
        .iter()
        .copied()
        .filter(|p| !avoid_text.contains(p))
        .collect();
    if candidates.is_empty() {
        candidates = c.paraphrases.to_vec();
    }
    if candidates.is_empty() {
        return c.name.replace('-', " ");
    }
    candidates[rng.gen_range(0..candidates.len())].to_owned()
}

/// Generates evaluation queries for one city.
#[must_use]
pub fn generate_queries(data: &CityData, config: &QueryGenConfig) -> Vec<TestQuery> {
    let ontology = Ontology::builtin();
    let mut rng =
        StdRng::seed_from_u64(config.seed ^ concepts::hash::fnv1a(data.city.key.as_bytes()));
    let global_ids: Vec<ConceptId> = GLOBAL_OPTIONAL.iter().map(|n| ontology.id_of(n)).collect();

    let n_pois = data.dataset.len();
    let mut out = Vec::with_capacity(config.per_city);
    let max_attempts = config.per_city * 200;

    for _ in 0..max_attempts {
        if out.len() >= config.per_city {
            break;
        }
        // Target POI and a 5 km box that contains it (centre jittered so
        // the target is not always dead-centre).
        let target = ObjectId(rng.gen_range(0..n_pois as u32));
        let t_loc = data.dataset[target].location;
        let jitter = config.range_km / 2.0 * 0.8;
        let center = t_loc.offset_km(
            rng.gen_range(-jitter..jitter),
            rng.gen_range(-jitter..jitter),
        );
        let range = BoundingBox::from_center_km(center, config.range_km, config.range_km);
        if !range.contains(&t_loc) {
            continue;
        }

        // Required concepts, structured like the paper's example query
        // ("Find Japanese restaurants … that offer a variety of sushi
        // options"): a *base* aspect drawn from the archetype's core
        // concepts — which the query states plainly — plus a
        // *distinguishing* aspect drawn from the rest of the POI's
        // concepts — which the query paraphrases.
        let archetype = data.archetype_of(target);
        let ontology_core: Vec<ConceptId> =
            archetype.core.iter().map(|n| ontology.id_of(n)).collect();
        let held = data.concepts_of(target);
        let mut distinguishers: Vec<ConceptId> = held
            .iter()
            .copied()
            .filter(|c| !ontology_core.contains(c) && !global_ids.contains(c))
            .collect();
        // Service concepts are allowed as distinguishers when nothing
        // better exists.
        if distinguishers.is_empty() {
            distinguishers = held
                .iter()
                .copied()
                .filter(|c| !ontology_core.contains(c))
                .collect();
        }
        let base = ontology_core[rng.gen_range(0..ontology_core.len())];
        let two_aspects = !distinguishers.is_empty() && rng.gen_bool(0.8);
        let mut required: Vec<ConceptId> = if two_aspects {
            let d = distinguishers[rng.gen_range(0..distinguishers.len())];
            vec![base, d]
        } else if rng.gen_bool(0.5) && !distinguishers.is_empty() {
            // Single-aspect semantic query about the distinguisher.
            vec![distinguishers[rng.gen_range(0..distinguishers.len())]]
        } else {
            vec![base]
        };
        required.sort();
        required.dedup();
        let is_two = required.len() == 2;
        let base_first = required[0] == base;

        // Ground-truth answer set.
        let in_range = data.dataset.range_scan(&range);
        let answers: Vec<ObjectId> = in_range
            .iter()
            .copied()
            .filter(|&id| ontology.satisfies_all(data.concepts_of(id), &required))
            .collect();
        if answers.len() < config.min_answers || answers.len() > config.max_answers {
            continue;
        }
        debug_assert!(answers.contains(&target));

        // Render the query text: the base aspect plainly (a surface
        // term), the distinguishing aspect covertly (a paraphrase that
        // avoids the target's own wording).
        let target_text = data.dataset[target].to_document().to_lowercase();
        let text = if is_two {
            let (base_c, dist_c) = if base_first {
                (required[0], required[1])
            } else {
                (required[1], required[0])
            };
            // The paper's manual review removed queries "that can be
            // easily answered by keyword matching"; accordingly a share
            // of queries states even the base aspect covertly.
            let a = if rng.gen_bool(0.55) {
                let surf = ontology.concept(base_c).surface;
                surf[rng.gen_range(0..surf.len())].to_owned()
            } else {
                covert_phrase(ontology, base_c, &target_text, &mut rng)
            };
            let b = covert_phrase(ontology, dist_c, &target_text, &mut rng);
            let t = TEMPLATES_TWO[rng.gen_range(0..TEMPLATES_TWO.len())];
            t.replace("{a}", &a).replace("{b}", &b)
        } else if required[0] == base {
            let surf = ontology.concept(base).surface;
            let a = surf[rng.gen_range(0..surf.len())].to_owned();
            let t = TEMPLATES_ONE[rng.gen_range(0..TEMPLATES_ONE.len())];
            t.replace("{a}", &a)
        } else {
            let a = covert_phrase(ontology, required[0], &target_text, &mut rng);
            let t = TEMPLATES_ONE[rng.gen_range(0..TEMPLATES_ONE.len())];
            t.replace("{a}", &a)
        };

        out.push(TestQuery {
            city_key: data.city.key,
            text,
            range,
            target,
            required,
            answers,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CITIES;
    use crate::poi::generate_city;

    fn small_city() -> CityData {
        generate_city(&CITIES[0], 800, 42)
    }

    #[test]
    fn harvests_requested_number() {
        let data = small_city();
        let qs = generate_queries(&data, &QueryGenConfig::default());
        assert_eq!(qs.len(), 30);
    }

    #[test]
    fn answers_contain_target_and_respect_bounds() {
        let data = small_city();
        let cfg = QueryGenConfig::default();
        for q in generate_queries(&data, &cfg) {
            assert!(q.answers.contains(&q.target));
            assert!(q.answers.len() >= cfg.min_answers);
            assert!(q.answers.len() <= cfg.max_answers);
            assert!(q.range.contains(&data.dataset[q.target].location));
        }
    }

    #[test]
    fn answer_set_is_exactly_the_satisfying_in_range_pois() {
        let data = small_city();
        let ontology = Ontology::builtin();
        for q in generate_queries(&data, &QueryGenConfig::default())
            .iter()
            .take(5)
        {
            let recomputed: Vec<ObjectId> = data
                .dataset
                .range_scan(&q.range)
                .into_iter()
                .filter(|&id| ontology.satisfies_all(data.concepts_of(id), &q.required))
                .collect();
            assert_eq!(&recomputed, &q.answers);
        }
    }

    #[test]
    fn query_text_avoids_target_surface_terms() {
        // The rendered text should rarely share its exact phrase with the
        // target's document (the "hard for keyword matching" property).
        let data = small_city();
        let qs = generate_queries(&data, &QueryGenConfig::default());
        let mut leaked = 0usize;
        for q in &qs {
            let target_text = data.dataset[q.target].to_document().to_lowercase();
            let core = q
                .text
                .to_lowercase()
                .replace("i'm looking for a place with ", "")
                .replace(". do you have any recommendations?", "");
            if target_text.contains(core.trim()) {
                leaked += 1;
            }
        }
        assert!(
            leaked <= qs.len() / 5,
            "{leaked}/{} queries leaked",
            qs.len()
        );
    }

    #[test]
    fn ranges_are_five_km() {
        let data = small_city();
        for q in generate_queries(&data, &QueryGenConfig::default())
            .iter()
            .take(5)
        {
            let (w, h) = q.range.extent_km();
            assert!((w - 5.0).abs() < 0.1, "width {w}");
            assert!((h - 5.0).abs() < 0.1, "height {h}");
        }
    }

    #[test]
    fn deterministic() {
        let data = small_city();
        let a = generate_queries(&data, &QueryGenConfig::default());
        let b = generate_queries(&data, &QueryGenConfig::default());
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].text, b[0].text);
        assert_eq!(a[0].answers, b[0].answers);
    }
}

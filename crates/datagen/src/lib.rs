//! # datagen — a synthetic Yelp-like geo-textual world
//!
//! The paper's dataset (Yelp Open Dataset, five US cities, 19,795 POIs)
//! cannot be redistributed; the paper itself ships construction
//! instructions instead of data. This crate is the reproduction's
//! equivalent: a deterministic generator of a Yelp-*shaped* world whose
//! semantics are known by construction.
//!
//! Every POI is generated from a **business archetype** (sports bar,
//! café, sushi restaurant, tire shop, …) that assigns it *latent semantic
//! concepts* from the shared [`concepts::Ontology`]. Tips are rendered
//! from those concepts — sometimes naming them (surface terms), sometimes
//! merely implying them (paraphrases) — which recreates the property the
//! paper's experiments rely on: text whose meaning exceeds its keywords
//! (Figure 1's "Industry Beans" café that never says "café").
//!
//! Because the latent concepts are known, *ground-truth relevance is
//! computable*: a query requiring concepts `{a, b}` is answered by
//! exactly the in-range POIs whose latent concepts entail both. This
//! replaces the paper's manual answer-set inspection.
//!
//! The [`queries`] module generates the evaluation workload the same way
//! the paper does — pick a target POI in a 5 km × 5 km range, phrase a
//! query about it that avoids its surface keywords, keep queries whose
//! answer sets are reasonable — and [`workload::Workload`] assembles the
//! full five-city benchmark.

#![warn(missing_docs)]

pub mod city;
pub mod export;
pub mod geocode;
pub mod metro;
pub mod names;
pub mod poi;
pub mod queries;
pub mod taxonomy;
pub mod tips;
pub mod workload;

pub use city::{City, CITIES, METRO};
pub use geocode::{Address, ReverseGeocoder};
pub use metro::{district_counts, generate_metro, MetroConfig};
pub use poi::CityData;
pub use queries::TestQuery;
pub use taxonomy::{Archetype, ARCHETYPES};
pub use workload::{Workload, WorkloadConfig};

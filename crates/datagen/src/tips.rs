//! Tip (short review) generation.
//!
//! Tips are rendered from a POI's latent concepts. Each concept is
//! guaranteed at least one mention across the POI's tips (so a perfect
//! reader *can* recover the ground truth), and each mention uses either a
//! surface term or a paraphrase — the mix that makes keyword matching
//! lossy but semantics recoverable. Volume is calibrated to the paper's
//! statistics: ~11 tips and ~147 tokens per POI.

use concepts::{ConceptId, Ontology};
use rand::rngs::StdRng;
use rand::Rng;

/// Probability a concept mention uses a surface term (vs a paraphrase).
const SURFACE_PROB: f64 = 0.55;

/// Openers that wrap a concept phrase into a review sentence.
const OPENERS: &[&str] = &[
    "",
    "Love this place - ",
    "Came by on a whim and ",
    "Honestly, ",
    "Can confirm: ",
    "Third visit this month. ",
    "If you're nearby, ",
    "Don't sleep on this spot. ",
];

/// Closers appended to some tips.
const CLOSERS: &[&str] = &[
    "",
    " Will be back!",
    " Five stars from me.",
    " Worth the trip.",
    " You won't regret it.",
    " Tell them I sent you.",
    " Solid all around.",
];

/// Concept-free filler tips (reviews often say nothing specific).
const FILLERS: &[&str] = &[
    "Solid spot, no complaints.",
    "Exactly what it says on the tin.",
    "Decent overall, would return.",
    "My go-to in this part of town.",
    "Pretty good, nothing to add.",
    "Does the job every time.",
];

fn phrase_for(ontology: &Ontology, id: ConceptId, rng: &mut StdRng) -> &'static str {
    let c = ontology.concept(id);
    let surface = rng.gen_bool(SURFACE_PROB) || c.paraphrases.is_empty();
    let pool: &[&str] = if surface { c.surface } else { c.paraphrases };
    pool[rng.gen_range(0..pool.len())]
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Renders one tip mentioning the given concept phrases.
fn render_tip(phrases: &[&str], rng: &mut StdRng) -> String {
    let opener = OPENERS[rng.gen_range(0..OPENERS.len())];
    let closer = CLOSERS[rng.gen_range(0..CLOSERS.len())];
    let body = match phrases.len() {
        0 => FILLERS[rng.gen_range(0..FILLERS.len())].to_owned(),
        1 => format!("{}.", phrases[0]),
        _ => format!("{}, and {} too.", phrases[0], phrases[1]),
    };
    let mut tip = if opener.is_empty() {
        capitalize(&body)
    } else {
        format!("{opener}{body}")
    };
    tip.push_str(closer);
    tip
}

/// Generates the tips for a POI holding `concepts`.
///
/// Guarantees: every concept appears in at least one tip; tip count is
/// ~7–15 (mean ≈ 11).
pub fn generate_tips(concepts: &[ConceptId], ontology: &Ontology, rng: &mut StdRng) -> Vec<String> {
    let n_tips = rng.gen_range(7usize..=15).max(concepts.len());
    let mut tips = Vec::with_capacity(n_tips);

    // Pass 1: one tip per concept (guaranteed coverage), sometimes
    // pairing the concept with a second random concept.
    for (i, &c) in concepts.iter().enumerate() {
        let mut phrases = vec![phrase_for(ontology, c, rng)];
        if concepts.len() > 1 && rng.gen_bool(0.35) {
            let other = concepts[(i + 1 + rng.gen_range(0..concepts.len() - 1)) % concepts.len()];
            if other != c {
                phrases.push(phrase_for(ontology, other, rng));
            }
        }
        tips.push(render_tip(&phrases, rng));
    }

    // Pass 2: fill to n_tips with repeat mentions and fillers.
    while tips.len() < n_tips {
        if !concepts.is_empty() && rng.gen_bool(0.7) {
            let c = concepts[rng.gen_range(0..concepts.len())];
            tips.push(render_tip(&[phrase_for(ontology, c, rng)], rng));
        } else {
            tips.push(render_tip(&[], rng));
        }
    }
    tips
}

#[cfg(test)]
mod tests {
    use super::*;
    use concepts::ConceptDetector;
    use rand::SeedableRng;

    fn ontology() -> &'static Ontology {
        Ontology::builtin()
    }

    fn sample_concepts() -> Vec<ConceptId> {
        let o = ontology();
        vec![
            o.id_of("live-sports-viewing"),
            o.id_of("chicken-wings"),
            o.id_of("craft-beer"),
            o.id_of("friendly-staff"),
        ]
    }

    #[test]
    fn every_concept_is_recoverable_from_tips() {
        let o = ontology();
        let detector = ConceptDetector::builtin();
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let concepts = sample_concepts();
            let tips = generate_tips(&concepts, o, &mut rng);
            let joined = tips.join(" ");
            let found = detector.detect_ids(&joined);
            for c in &concepts {
                assert!(
                    found.contains(c),
                    "seed {seed}: concept {} not recoverable from {joined:?}",
                    o.concept(*c).name
                );
            }
        }
    }

    #[test]
    fn tip_count_in_paper_range() {
        let o = ontology();
        let mut rng = StdRng::seed_from_u64(5);
        let mut total = 0usize;
        let runs = 200;
        for _ in 0..runs {
            total += generate_tips(&sample_concepts(), o, &mut rng).len();
        }
        let avg = total as f64 / runs as f64;
        assert!((9.0..=13.0).contains(&avg), "avg tips {avg}");
    }

    #[test]
    fn token_volume_in_paper_range() {
        // Paper: ~147 tokens of tips per POI.
        let o = ontology();
        let mut rng = StdRng::seed_from_u64(9);
        let mut total_tokens = 0usize;
        let runs = 100;
        for _ in 0..runs {
            let tips = generate_tips(&sample_concepts(), o, &mut rng);
            total_tokens += tips
                .iter()
                .map(|t| t.split_whitespace().count())
                .sum::<usize>();
        }
        let avg = total_tokens as f64 / runs as f64;
        assert!((70.0..=220.0).contains(&avg), "avg tip tokens {avg}");
    }

    #[test]
    fn deterministic_per_seed() {
        let o = ontology();
        let mut r1 = StdRng::seed_from_u64(11);
        let mut r2 = StdRng::seed_from_u64(11);
        assert_eq!(
            generate_tips(&sample_concepts(), o, &mut r1),
            generate_tips(&sample_concepts(), o, &mut r2)
        );
    }

    #[test]
    fn conceptless_poi_gets_filler_tips() {
        let o = ontology();
        let mut rng = StdRng::seed_from_u64(2);
        let tips = generate_tips(&[], o, &mut rng);
        assert!(tips.len() >= 7);
    }
}

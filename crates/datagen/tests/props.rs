//! Property-based tests for the synthetic world generator.

use datagen::poi::generate_city;
use datagen::queries::{generate_queries, QueryGenConfig};
use datagen::CITIES;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn queries_satisfy_invariants_for_any_seed(
        seed in 0u64..10_000,
        city_idx in 0usize..5,
        per_city in 1usize..8,
    ) {
        let data = generate_city(&CITIES[city_idx], 300, seed);
        let cfg = QueryGenConfig {
            per_city,
            seed,
            ..QueryGenConfig::default()
        };
        let ontology = concepts::Ontology::builtin();
        for q in generate_queries(&data, &cfg) {
            // Target inside the range and inside the answers.
            prop_assert!(q.range.contains(&data.dataset[q.target].location));
            prop_assert!(q.answers.contains(&q.target));
            // Answer bounds respected.
            prop_assert!(q.answers.len() >= cfg.min_answers);
            prop_assert!(q.answers.len() <= cfg.max_answers);
            // Required concepts are held (via entailment) by every answer.
            for &a in &q.answers {
                prop_assert!(ontology.satisfies_all(data.concepts_of(a), &q.required));
            }
            // Non-answers in range genuinely fail some requirement.
            for id in data.dataset.range_scan(&q.range) {
                if !q.answers.contains(&id) {
                    prop_assert!(!ontology.satisfies_all(data.concepts_of(id), &q.required));
                }
            }
            // The query text is non-trivial.
            prop_assert!(q.text.split_whitespace().count() >= 4);
        }
    }

    #[test]
    fn generated_pois_always_well_formed(seed in 0u64..10_000, n in 10usize..120) {
        let data = generate_city(&CITIES[seed as usize % 5], n, seed);
        prop_assert_eq!(data.dataset.len(), n);
        for o in data.dataset.iter() {
            prop_assert!(o.attrs.has_textual());
            let tips = o.attrs.get("tips").and_then(|v| v.as_list()).unwrap();
            prop_assert!(tips.len() >= 7);
            let stars = o.attrs.get("stars").and_then(|v| v.as_f64()).unwrap();
            prop_assert!((1.0..=5.0).contains(&stars));
            // Latent truth is non-empty and recoverable.
            prop_assert!(!data.concepts_of(o.id).is_empty());
        }
    }
}

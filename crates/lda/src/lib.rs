//! # lda — Latent Dirichlet Allocation
//!
//! The weaker of the paper's two baselines: earlier semantics-aware
//! spatial keyword work (Qian et al., DASFAA'16/WWW'18, followed by the
//! paper) measured semantic relevance with LDA topic distributions. The
//! paper finds LDA performs poorly on short POI texts ("the queries and
//! POI attributes are relatively short, making it difficult for LDA to
//! learn accurate distributions") — this crate reproduces that behaviour
//! with a standard collapsed Gibbs sampler.

#![warn(missing_docs)]

pub mod model;
pub mod similarity;

pub use model::{LdaConfig, LdaModel};
pub use similarity::{cosine_f64, jensen_shannon};

//! Collapsed Gibbs sampling for LDA.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use textindex::TermId;

/// LDA hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LdaConfig {
    /// Number of latent topics.
    pub num_topics: usize,
    /// Symmetric document–topic prior.
    pub alpha: f64,
    /// Symmetric topic–word prior.
    pub beta: f64,
    /// Gibbs sweeps over the corpus during training.
    pub iterations: usize,
    /// Gibbs sweeps when folding in an unseen document.
    pub infer_iterations: usize,
    /// RNG seed (training is deterministic given the seed).
    pub seed: u64,
}

impl Default for LdaConfig {
    fn default() -> Self {
        Self {
            num_topics: 20,
            alpha: 0.1,
            beta: 0.01,
            iterations: 150,
            infer_iterations: 30,
            seed: 42,
        }
    }
}

/// A trained LDA model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LdaModel {
    config: LdaConfig,
    vocab_size: usize,
    /// `topic_word[k * vocab_size + w]` = count of word `w` in topic `k`.
    topic_word: Vec<u32>,
    /// Total words per topic.
    topic_totals: Vec<u32>,
    /// Per-document topic distributions of the training corpus.
    doc_topics: Vec<Vec<f64>>,
}

impl LdaModel {
    /// Trains LDA on tokenized documents (term ids must be `< vocab_size`).
    ///
    /// Empty documents are allowed; they get the uniform distribution.
    #[must_use]
    pub fn fit(docs: &[Vec<TermId>], vocab_size: usize, config: LdaConfig) -> Self {
        let k = config.num_topics.max(1);
        let v = vocab_size.max(1);
        let mut rng = StdRng::seed_from_u64(config.seed);

        let mut topic_word = vec![0u32; k * v];
        let mut topic_totals = vec![0u32; k];
        let mut doc_topic: Vec<Vec<u32>> = vec![vec![0u32; k]; docs.len()];
        // z[d][i] = topic of the i-th token of doc d.
        let mut z: Vec<Vec<u16>> = Vec::with_capacity(docs.len());

        // Random initialization.
        for (d, doc) in docs.iter().enumerate() {
            let mut zd = Vec::with_capacity(doc.len());
            for &w in doc {
                let t = rng.gen_range(0..k);
                zd.push(t as u16);
                doc_topic[d][t] += 1;
                topic_word[t * v + w as usize] += 1;
                topic_totals[t] += 1;
            }
            z.push(zd);
        }

        let alpha = config.alpha;
        let beta = config.beta;
        let vbeta = v as f64 * beta;
        let mut probs = vec![0.0f64; k];

        for _ in 0..config.iterations {
            for (d, doc) in docs.iter().enumerate() {
                for (i, &w) in doc.iter().enumerate() {
                    let old = z[d][i] as usize;
                    // Remove the token from the counts.
                    doc_topic[d][old] -= 1;
                    topic_word[old * v + w as usize] -= 1;
                    topic_totals[old] -= 1;

                    // Full conditional.
                    let mut sum = 0.0;
                    for (t, p) in probs.iter_mut().enumerate() {
                        let pw = (f64::from(topic_word[t * v + w as usize]) + beta)
                            / (f64::from(topic_totals[t]) + vbeta);
                        let pt = f64::from(doc_topic[d][t]) + alpha;
                        *p = pw * pt;
                        sum += *p;
                    }
                    // Sample.
                    let mut target = rng.gen_range(0.0..sum);
                    let mut new = k - 1;
                    for (t, &p) in probs.iter().enumerate() {
                        if target < p {
                            new = t;
                            break;
                        }
                        target -= p;
                    }

                    z[d][i] = new as u16;
                    doc_topic[d][new] += 1;
                    topic_word[new * v + w as usize] += 1;
                    topic_totals[new] += 1;
                }
            }
        }

        // Final document distributions.
        let doc_topics: Vec<Vec<f64>> = docs
            .iter()
            .enumerate()
            .map(|(d, doc)| {
                let n = doc.len() as f64;
                (0..k)
                    .map(|t| (f64::from(doc_topic[d][t]) + alpha) / (n + k as f64 * alpha))
                    .collect()
            })
            .collect();

        Self {
            config,
            vocab_size: v,
            topic_word,
            topic_totals,
            doc_topics,
        }
    }

    /// Number of topics.
    #[must_use]
    pub fn num_topics(&self) -> usize {
        self.config.num_topics.max(1)
    }

    /// Topic distribution of training document `d`.
    #[must_use]
    pub fn doc_topics(&self, d: usize) -> Option<&[f64]> {
        self.doc_topics.get(d).map(Vec::as_slice)
    }

    /// Folds in an unseen tokenized document (Gibbs with frozen
    /// topic–word counts) and returns its topic distribution.
    ///
    /// Out-of-vocabulary term ids are skipped.
    #[must_use]
    pub fn infer(&self, doc: &[TermId], seed: u64) -> Vec<f64> {
        let k = self.num_topics();
        let v = self.vocab_size;
        let alpha = self.config.alpha;
        let beta = self.config.beta;
        let vbeta = v as f64 * beta;
        let tokens: Vec<u32> = doc.iter().copied().filter(|&w| (w as usize) < v).collect();
        if tokens.is_empty() {
            return vec![1.0 / k as f64; k];
        }
        let mut rng = StdRng::seed_from_u64(seed ^ self.config.seed);
        let mut counts = vec![0u32; k];
        let mut z: Vec<usize> = tokens.iter().map(|_| rng.gen_range(0..k)).collect();
        for &t in &z {
            counts[t] += 1;
        }
        let mut probs = vec![0.0f64; k];
        for _ in 0..self.config.infer_iterations {
            for (i, &w) in tokens.iter().enumerate() {
                let old = z[i];
                counts[old] -= 1;
                let mut sum = 0.0;
                for (t, p) in probs.iter_mut().enumerate() {
                    let pw = (f64::from(self.topic_word[t * v + w as usize]) + beta)
                        / (f64::from(self.topic_totals[t]) + vbeta);
                    let pt = f64::from(counts[t]) + alpha;
                    *p = pw * pt;
                    sum += *p;
                }
                let mut target = rng.gen_range(0.0..sum);
                let mut new = k - 1;
                for (t, &p) in probs.iter().enumerate() {
                    if target < p {
                        new = t;
                        break;
                    }
                    target -= p;
                }
                z[i] = new;
                counts[new] += 1;
            }
        }
        let n = tokens.len() as f64;
        (0..k)
            .map(|t| (f64::from(counts[t]) + alpha) / (n + k as f64 * alpha))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two clearly separated word groups: topics should separate them.
    fn synthetic_corpus() -> (Vec<Vec<TermId>>, usize) {
        // Vocab: 0..5 = "sports" words, 5..10 = "food" words.
        let mut docs = Vec::new();
        for d in 0..30 {
            let base: u32 = if d % 2 == 0 { 0 } else { 5 };
            let doc: Vec<TermId> = (0..20).map(|i| base + (i % 5)).collect();
            docs.push(doc);
        }
        (docs, 10)
    }

    #[test]
    fn fit_is_deterministic() {
        let (docs, v) = synthetic_corpus();
        let cfg = LdaConfig {
            num_topics: 2,
            iterations: 50,
            ..LdaConfig::default()
        };
        let a = LdaModel::fit(&docs, v, cfg.clone());
        let b = LdaModel::fit(&docs, v, cfg);
        assert_eq!(a.doc_topics(0), b.doc_topics(0));
    }

    #[test]
    fn separable_corpus_separates() {
        let (docs, v) = synthetic_corpus();
        let cfg = LdaConfig {
            num_topics: 2,
            iterations: 100,
            ..LdaConfig::default()
        };
        let m = LdaModel::fit(&docs, v, cfg);
        let even = m.doc_topics(0).unwrap();
        let odd = m.doc_topics(1).unwrap();
        // Dominant topics of the two doc families differ.
        let top_even = even
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let top_odd = odd
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_ne!(top_even, top_odd);
        assert!(even[top_even] > 0.8);
    }

    #[test]
    fn distributions_sum_to_one() {
        let (docs, v) = synthetic_corpus();
        let m = LdaModel::fit(
            &docs,
            v,
            LdaConfig {
                num_topics: 4,
                iterations: 20,
                ..LdaConfig::default()
            },
        );
        for d in 0..docs.len() {
            let s: f64 = m.doc_topics(d).unwrap().iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "doc {d} sums to {s}");
        }
    }

    #[test]
    fn infer_assigns_similar_docs_same_topic() {
        let (docs, v) = synthetic_corpus();
        let cfg = LdaConfig {
            num_topics: 2,
            iterations: 100,
            ..LdaConfig::default()
        };
        let m = LdaModel::fit(&docs, v, cfg);
        let sports_like = m.infer(&[0, 1, 2, 3, 4, 0, 1], 7);
        let train_sports = m.doc_topics(0).unwrap();
        let top_new = sports_like
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let top_train = train_sports
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(top_new, top_train);
    }

    #[test]
    fn infer_handles_oov_and_empty() {
        let (docs, v) = synthetic_corpus();
        let m = LdaModel::fit(
            &docs,
            v,
            LdaConfig {
                num_topics: 3,
                iterations: 10,
                ..LdaConfig::default()
            },
        );
        let uniform = m.infer(&[], 1);
        assert!(uniform.iter().all(|&p| (p - 1.0 / 3.0).abs() < 1e-9));
        // OOV ids are skipped rather than panicking.
        let dist = m.infer(&[999, 1000], 1);
        assert_eq!(dist.len(), 3);
    }

    #[test]
    fn empty_docs_allowed_in_training() {
        let docs = vec![vec![], vec![0, 1], vec![]];
        let m = LdaModel::fit(
            &docs,
            2,
            LdaConfig {
                num_topics: 2,
                iterations: 5,
                ..LdaConfig::default()
            },
        );
        let d0 = m.doc_topics(0).unwrap();
        assert!((d0.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}

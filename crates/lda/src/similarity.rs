//! Similarity measures between topic distributions.

/// Cosine similarity between two dense f64 vectors.
#[must_use]
pub fn cosine_f64(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let (mut dot, mut na, mut nb) = (0.0, 0.0, 0.0);
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    let denom = (na * nb).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        dot / denom
    }
}

/// Jensen–Shannon similarity `1 - JSD(p, q)` (base-2 JSD ∈ [0, 1]).
///
/// The measure used by the semantics-aware spatial keyword baselines for
/// comparing LDA topic distributions.
#[must_use]
pub fn jensen_shannon(p: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), q.len());
    fn kl(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .filter(|(x, _)| **x > 0.0)
            .map(|(x, y)| x * (x / y.max(f64::MIN_POSITIVE)).log2())
            .sum()
    }
    let m: Vec<f64> = p.iter().zip(q).map(|(x, y)| (x + y) / 2.0).collect();
    let jsd = 0.5 * kl(p, &m) + 0.5 * kl(q, &m);
    1.0 - jsd.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_max_similarity() {
        let p = [0.5, 0.3, 0.2];
        assert!((jensen_shannon(&p, &p) - 1.0).abs() < 1e-12);
        assert!((cosine_f64(&p, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_distributions_min_similarity() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!(jensen_shannon(&p, &q) < 1e-9);
        assert!(cosine_f64(&p, &q).abs() < 1e-12);
    }

    #[test]
    fn jensen_shannon_symmetric() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.1, 0.6, 0.3];
        assert!((jensen_shannon(&p, &q) - jensen_shannon(&q, &p)).abs() < 1e-12);
    }

    #[test]
    fn closer_distributions_more_similar() {
        let p = [0.6, 0.4];
        let near = [0.55, 0.45];
        let far = [0.1, 0.9];
        assert!(jensen_shannon(&p, &near) > jensen_shannon(&p, &far));
    }
}

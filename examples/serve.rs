//! Serving-layer load driver: several client threads fire queries at a
//! `ServeEngine` concurrently, the admission queue forms micro-batches
//! (size cap or latency window, whichever first), and every client gets
//! its answer back through a `Ticket` — identical to what a direct
//! `engine.query` would have returned. A second, deliberately tiny
//! server then shows the backpressure path: a full queue sheds with
//! `Overloaded` instead of blocking.
//!
//! ```sh
//! cargo run --release --example serve
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use llm::SimLlm;
use semask::{prepare_city, SemaSkConfig, SemaSkEngine, SemaSkQuery, Variant};
use semask_serve::{ServeConfig, ServeEngine, SubmitError};

fn main() {
    // Offline prep, as in the quickstart; SemaSK-EM keeps the demo on
    // the serving + filtering path (no simulated LLM latency).
    let city = datagen::poi::generate_city(&datagen::CITIES[1], 400, 42);
    let llm = Arc::new(SimLlm::new());
    let config = SemaSkConfig::default();
    let prepared = Arc::new(prepare_city(&city, &llm, &config).expect("preparation"));
    let engine = Arc::new(SemaSkEngine::new(
        prepared,
        llm,
        config,
        Variant::EmbeddingOnly,
    ));

    let texts = [
        "quiet coffee with pastries",
        "live music and craft beer",
        "late night ramen",
        "a bookstore to browse for an hour",
        "family friendly pizza",
        "rooftop cocktails at sunset",
    ];
    let center = datagen::CITIES[1].center();
    let ranges = [
        geotext::BoundingBox::from_center_km(center, 5.0, 5.0),
        geotext::BoundingBox::from_center_km(center, 12.0, 12.0),
    ];

    // ---- Live traffic: 4 clients x 24 queries through one server ----
    let serve = ServeEngine::new(
        Arc::clone(&engine),
        ServeConfig {
            max_batch: 16,
            latency_budget: Duration::from_millis(1),
            queue_capacity: 256,
            // Overlap refinement of one flush with filtering of the
            // next (0 = single-stage execution).
            pipeline_depth: 2,
            result_cache_entries: 0,
            negative_cache: false,
        },
    );
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 24;
    let t0 = Instant::now();
    let answered: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let serve = &serve;
                scope.spawn(move || {
                    let mut got = 0;
                    for i in 0..PER_CLIENT {
                        let q = SemaSkQuery::new(
                            ranges[(c + i) % ranges.len()],
                            format!("client {c}: {}", texts[i % texts.len()]),
                        );
                        let ticket = serve.submit(q).expect("capacity covers this load");
                        let outcome = ticket.wait().expect("served");
                        got += usize::from(!outcome.pois.is_empty());
                    }
                    got
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    });
    let elapsed = t0.elapsed();
    let m = serve.metrics();
    serve.shutdown();

    println!(
        "--- serving {} queries from {CLIENTS} concurrent clients ---",
        m.accepted
    );
    println!(
        "answered      : {answered} non-empty of {} in {:.1} ms ({:.0} queries/sec)",
        m.accepted,
        elapsed.as_secs_f64() * 1e3,
        m.accepted as f64 / elapsed.as_secs_f64(),
    );
    println!(
        "micro-batches : {} flushed, mean size {:.1}, max {} (cap 16), {} range groups",
        m.batches,
        m.mean_batch_size(),
        m.max_batch,
        m.groups,
    );
    println!(
        "queue         : mean admission-to-flush wait {:.0} µs, shed {}",
        m.mean_queue_wait().as_secs_f64() * 1e6,
        m.shed,
    );

    // ---- Backpressure: a server sized to be overrun ----
    // Capacity 4 with a long window: the 5th+ concurrent submission is
    // shed immediately with `Overloaded` — the client hears "try again"
    // in microseconds instead of queueing unboundedly.
    let tiny = ServeEngine::new(
        Arc::clone(&engine),
        ServeConfig {
            max_batch: 64,
            latency_budget: Duration::from_millis(50),
            queue_capacity: 4,
            pipeline_depth: 0,
            result_cache_entries: 0,
            negative_cache: false,
        },
    );
    let mut tickets = Vec::new();
    let mut shed = 0;
    for i in 0..10 {
        match tiny.submit(SemaSkQuery::new(ranges[0], texts[i % texts.len()])) {
            Ok(t) => tickets.push(t),
            Err(SubmitError::Overloaded) => shed += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    println!("\n--- overload demo (queue capacity 4, 10 rapid submissions) ---");
    println!(
        "admitted      : {} tickets, shed {shed} with Overloaded (metrics agree: {})",
        tickets.len(),
        tiny.metrics().shed,
    );
    // Graceful shutdown still answers every admitted ticket.
    tiny.shutdown();
    let served = tickets
        .into_iter()
        .map(semask_serve::Ticket::wait)
        .filter(Result::is_ok)
        .count();
    println!("after shutdown: all {served} admitted tickets answered exactly once");
}

//! LLM cost accounting across a whole SemaSK session — the economics the
//! paper's design decisions optimise (embedding pre-filtering "to limit
//! the LLM costs of the refinement step", GPT-3.5 summaries "for its
//! lower costs", GPT-4o over o1-mini "considering its higher cost").
//!
//! ```sh
//! cargo run --release --example cost_report
//! ```

use std::sync::Arc;

use llm::{ModelKind, SimLlm};
use semask::{prepare_city, SemaSkConfig, SemaSkEngine, SemaSkQuery, Variant};

fn main() {
    let city = datagen::poi::generate_city(&datagen::CITIES[3], 500, 64);
    let llm = Arc::new(SimLlm::new());
    let config = SemaSkConfig::default();

    println!(
        "== offline: data preparation ({} POIs) ==",
        city.dataset.len()
    );
    let prepared = Arc::new(prepare_city(&city, &llm, &config).expect("prep"));
    let prep_log = llm.cost_log();
    let (calls, tokens, cost) = prep_log.by_model(ModelKind::Gpt35Turbo);
    println!("gpt-3.5-turbo summaries: {calls} calls, {tokens} tokens, ${cost:.4}");

    println!("\n== online: 20 queries through each refinement model ==");
    let queries = datagen::queries::generate_queries(
        &city,
        &datagen::queries::QueryGenConfig {
            per_city: 20,
            ..Default::default()
        },
    );
    for variant in [Variant::Full, Variant::O1] {
        llm.reset_log();
        let engine = SemaSkEngine::new(
            Arc::clone(&prepared),
            Arc::clone(&llm),
            config.clone(),
            variant,
        );
        let mut latency = 0.0;
        for q in &queries {
            let out = engine
                .query(&SemaSkQuery::new(q.range, q.text.clone()))
                .expect("query");
            latency += out.latency.refinement_ms;
        }
        let log = llm.cost_log();
        println!(
            "{:<10} {:>3} calls  {:>8} tokens  ${:>8.4}  avg latency {:>6.0} ms",
            engine.variant().label(),
            log.num_calls(),
            log.records()
                .iter()
                .map(|r| u64::from(r.usage.total()))
                .sum::<u64>(),
            log.total_cost_usd(),
            latency / queries.len() as f64,
        );
    }

    println!("\nThe paper's conclusion, reproduced: o1-mini costs more and is slower");
    println!("per refinement without better accuracy, so GPT-4o is the default.");
    println!(
        "Pre-filtering matters: refining all {} POIs per query instead of 10",
        city.dataset.len()
    );
    println!(
        "would multiply the per-query token bill by ~{}x.",
        city.dataset.len() / 10
    );
}

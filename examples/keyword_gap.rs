//! Figure-1 reproduction: the keyword-matching gap.
//!
//! The paper opens with a Google Maps search for "café" in Melbourne CBD
//! that returns only venues literally containing the keyword, missing
//! "Industry Beans" and "Starbucks". This example reproduces the effect
//! measurably: a classic IR-tree keyword search vs SemaSK on the same
//! range, sliced by name opacity.
//!
//! ```sh
//! cargo run --release --example keyword_gap
//! ```

use std::collections::HashSet;
use std::sync::Arc;

use datagen::names::NameStyle;
use geotext::BoundingBox;
use llm::SimLlm;
use semask::{prepare_city, SemaSkConfig, SemaSkEngine, SemaSkQuery, Variant};
use spatial::{IrTree, SpatialKeywordQuery};

fn main() {
    let city = datagen::poi::generate_city(&datagen::CITIES[0], 1200, 11);
    let ontology = concepts::Ontology::builtin();
    let coffee = ontology.id_of("coffee-specialty");

    // The "CBD": a 5 km x 5 km box downtown.
    let range = BoundingBox::from_center_km(datagen::CITIES[0].center(), 5.0, 5.0);

    // Ground truth: every in-range POI that actually is a café.
    let cafes: Vec<_> = city
        .dataset
        .range_scan(&range)
        .into_iter()
        .filter(|&id| ontology.satisfies(city.concepts_of(id), coffee))
        .collect();
    let opaque: Vec<_> = cafes
        .iter()
        .copied()
        .filter(|&id| city.name_styles[id.index()] == NameStyle::Opaque)
        .collect();
    println!(
        "{} cafés inside the range; {} have opaque names (no 'cafe'/'coffee' in the name)",
        cafes.len(),
        opaque.len()
    );

    // --- Keyword matching (the Google-Maps-style search of Figure 1) ---
    let irtree = IrTree::build(&city.dataset);
    let keyword_hits: HashSet<_> = irtree
        .search(&SpatialKeywordQuery {
            range,
            keywords: "cafe".to_owned(),
        })
        .into_iter()
        .collect();
    let kw_found = cafes.iter().filter(|id| keyword_hits.contains(id)).count();
    let kw_found_opaque = opaque.iter().filter(|id| keyword_hits.contains(id)).count();
    println!("\nIR-tree keyword search for \"cafe\":");
    println!(
        "  finds {kw_found}/{} cafés overall, {kw_found_opaque}/{} of the opaque-named ones",
        cafes.len(),
        opaque.len()
    );

    // --- SemaSK on the same intent ---
    let llm = Arc::new(SimLlm::new());
    let config = SemaSkConfig {
        k: 25,
        ..SemaSkConfig::default()
    };
    let prepared = Arc::new(prepare_city(&city, &llm, &config).expect("prep"));
    let engine = SemaSkEngine::new(prepared, llm, config, Variant::Full);
    let outcome = engine
        .query(&SemaSkQuery::new(range, "a café for a good cup of coffee"))
        .expect("query");
    let semask_ids: HashSet<_> = outcome.answer_ids().into_iter().collect();
    let sk_found_opaque = opaque.iter().filter(|id| semask_ids.contains(id)).count();
    println!("\nSemaSK on \"a café for a good cup of coffee\" (top-25 candidates):");
    println!(
        "  recommends {} POIs, including {sk_found_opaque}/{} opaque-named cafés",
        semask_ids.len(),
        opaque.len()
    );
    for id in outcome.answer_ids().iter().take(8) {
        let o = &engine.prepared().dataset[*id];
        let style = match city.name_styles[id.index()] {
            NameStyle::Opaque => "(opaque name!)",
            NameStyle::Descriptive => "",
        };
        println!("    {:<26} {style}", o.name());
    }

    println!("\nThe Figure-1 claim, quantified: keyword matching finds almost no");
    println!("opaque-named cafés, while semantics-aware search recovers them.");
    assert!(
        sk_found_opaque >= kw_found_opaque,
        "SemaSK should never find fewer opaque cafés than keyword matching"
    );
}

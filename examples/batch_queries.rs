//! Batched queries: answer many semantics-aware spatial keyword queries
//! in one call through `SemaSkEngine::query_batch`, and compare against
//! the same queries issued one at a time.
//!
//! The batched path plans once per distinct range group, shares the
//! grid/IR-tree candidate set across each group, and streams stored
//! vectors through the single-pass batch scoring kernel — returning
//! answers identical to sequential execution (`tests/batch_parity.rs`
//! pins this bit-for-bit at the retrieval layer).
//!
//! ```sh
//! cargo run --release --example batch_queries
//! ```

use std::sync::Arc;
use std::time::Instant;

use geotext::BoundingBox;
use llm::SimLlm;
use semask::{prepare_city, SemaSkConfig, SemaSkEngine, SemaSkQuery, Variant};

fn main() {
    // Offline prep, as in the quickstart.
    let city = datagen::poi::generate_city(&datagen::CITIES[1], 400, 42);
    let llm = Arc::new(SimLlm::new());
    let config = SemaSkConfig::default();
    let prepared = Arc::new(prepare_city(&city, &llm, &config).expect("preparation"));
    // SemaSK-EM (no LLM reranking) keeps the output focused on the
    // batched filtering stage.
    let engine = SemaSkEngine::new(prepared, Arc::clone(&llm), config, Variant::EmbeddingOnly);

    // A batch of queries: two range groups (downtown 5 km, wider 12 km)
    // x four texts. Queries sharing a range are planned and candidate-
    // generated once.
    let texts = [
        "quiet coffee with pastries",
        "live music and craft beer",
        "late night ramen",
        "a bookstore to browse for an hour",
    ];
    let center = datagen::CITIES[1].center();
    let ranges = [
        BoundingBox::from_center_km(center, 5.0, 5.0),
        BoundingBox::from_center_km(center, 12.0, 12.0),
    ];
    let queries: Vec<SemaSkQuery> = ranges
        .iter()
        .flat_map(|r| texts.iter().map(|t| SemaSkQuery::new(*r, *t)))
        .collect();

    // One batched call...
    let t0 = Instant::now();
    let batched = engine.query_batch(&queries).expect("batched queries");
    let batched_ms = t0.elapsed().as_secs_f64() * 1000.0;

    // ...vs the same queries one at a time.
    let t0 = Instant::now();
    let sequential: Vec<_> = queries
        .iter()
        .map(|q| engine.query(q).expect("query"))
        .collect();
    let sequential_ms = t0.elapsed().as_secs_f64() * 1000.0;

    println!(
        "{} queries ({} range groups): batched {batched_ms:.2} ms, sequential {sequential_ms:.2} ms",
        queries.len(),
        ranges.len(),
    );
    for (q, (b, s)) in queries.iter().zip(batched.iter().zip(&sequential)) {
        let b_ids: Vec<_> = b.pois.iter().map(|p| p.id).collect();
        let s_ids: Vec<_> = s.pois.iter().map(|p| p.id).collect();
        assert_eq!(b_ids, s_ids, "batched and sequential answers must agree");
        let strategy = b
            .latency
            .filter_strategy
            .map_or("none", semask::retrieval::RetrievalStrategy::label);
        println!(
            "  [{strategy:>14}] \"{}\" -> top: {}",
            q.text,
            b.pois.first().map_or("(no results)", |p| p.name.as_str()),
        );
    }
    println!("batched answers identical to sequential — batching is pure execution speed");
}

//! Figure-2 walkthrough: every stage of the SemaSK architecture with its
//! actual inputs and outputs, for one POI and one query.
//!
//! Data preparation: raw POI → address completion → tip summarization
//! (real prompt through the chat API) → embedding → vector DB.
//! Query processing: query text → embedding → filtered ANN → refinement
//! prompt → Python-dict answer → final result.
//!
//! ```sh
//! cargo run --release --example pipeline_walkthrough
//! ```

use std::sync::Arc;

use geotext::BoundingBox;
use llm::prompts::{rerank_prompt, summarize_prompt};
use llm::{ChatRequest, ModelKind, SimLlm};
use semask::{prepare_city, PreparedCity, SemaSkConfig, SemaSkEngine, SemaSkQuery, Variant};

fn section(title: &str) {
    println!("\n==== {title} ====");
}

fn main() {
    let city = datagen::poi::generate_city(&datagen::CITIES[2], 300, 3);
    let llm = Arc::new(SimLlm::new());

    section("raw POI record (paper Table 1 schema)");
    let raw = &city.dataset.objects()[42];
    for (k, v) in raw.attrs.iter() {
        let val = v.flatten();
        let short = if val.len() > 90 {
            format!("{}…", &val[..90])
        } else {
            val
        };
        println!("  {k:<12} {short}");
    }

    section("step 1: address completion (reverse geocoding)");
    let geocoder = datagen::ReverseGeocoder::for_city(&city.city);
    let addr = geocoder.locate(&raw.location);
    println!(
        "  ({:.4}, {:.4}) -> {} / {} / {} / {}",
        raw.location.lat, raw.location.lon, addr.city, addr.county, addr.suburb, addr.neighborhood
    );

    section("step 2: tip summarization (GPT-3.5 Turbo, the paper's prompt)");
    let tips: Vec<String> = raw
        .attrs
        .get("tips")
        .and_then(|v| v.as_list())
        .map(<[String]>::to_vec)
        .unwrap_or_default();
    let prompt = summarize_prompt(&tips);
    println!("  prompt head: {}…", &prompt[..120.min(prompt.len())]);
    let resp = llm
        .complete(&ChatRequest::user(ModelKind::Gpt35Turbo, prompt))
        .expect("summarize");
    println!(
        "  summary ({} tokens, {:.0} ms simulated): {}",
        resp.usage.completion_tokens, resp.latency_ms, resp.content
    );

    section("step 3: embedding generation -> vector database");
    let config = SemaSkConfig::default();
    let prepared = Arc::new(prepare_city(&city, &llm, &config).expect("prep"));
    let etext = PreparedCity::embedding_text(&prepared.dataset.objects()[42]);
    println!("  embedding input:\n    {}", etext.replace('\n', "\n    "));
    println!(
        "  -> {}-d vector stored in collection `{}` with geo payload",
        config.embedder.dim, prepared.collection_name
    );

    section("query processing: filtering");
    let range = BoundingBox::from_center_km(city.city.center(), 5.0, 5.0);
    let qtext = "Find me a pizzeria with gooey cheese pull.";
    let engine = SemaSkEngine::new(
        Arc::clone(&prepared),
        Arc::clone(&llm),
        config,
        Variant::Full,
    );
    let outcome = engine
        .query(&SemaSkQuery::new(range, qtext))
        .expect("query");
    println!("  query: {qtext}");
    println!("  top-10 candidates by embedding similarity inside the range:");
    for p in &outcome.pois {
        println!("    {:<26} score {:.3}", p.name, p.embed_score);
    }

    section("query processing: refinement (GPT-4o, the paper's prompt)");
    let pois_json: Vec<serde_json::Value> = outcome
        .pois
        .iter()
        .map(|p| prepared.dataset[p.id].to_json())
        .collect();
    let rp = rerank_prompt(&serde_json::Value::Array(pois_json), qtext);
    println!("  prompt head: {}…", &rp[..140.min(rp.len())]);
    let rr = llm
        .complete(&ChatRequest::user(ModelKind::Gpt4o, rp))
        .expect("rerank");
    println!(
        "  raw LLM answer (Python-dict format): {}",
        if rr.content.len() > 220 {
            format!("{}…", &rr.content[..220])
        } else {
            rr.content.clone()
        }
    );

    section("final answer");
    for p in outcome.pois.iter().filter(|p| p.recommended) {
        println!("  {:<26} {}", p.name, p.reason);
    }
    println!(
        "\n  latency: filtering {:.1} ms + refinement {:.0} ms",
        outcome.latency.filtering_ms, outcome.latency.refinement_ms
    );
    let log = llm.cost_log();
    println!(
        "  session LLM spend: {} calls, ${:.4}",
        log.num_calls(),
        log.total_cost_usd()
    );
}

//! Network serving end to end, in one process tree: this example
//! re-executes itself as two shard servers and a router (all on
//! loopback, ephemeral ports), then acts as a client — pipelining the
//! parity workload over the wire, checking every answer bit-for-bit
//! against a local engine, and finally killing a shard to show graceful
//! degradation.
//!
//! ```sh
//! cargo run --release --example net_serve
//! ```
//!
//! Roles (spawned internally; not for direct use):
//! `--role shard --shard I` and `--role router --peers a,b`.

use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Instant;

use semask::SemaSkQuery;
use semask_net::boot::{self, NodeParams};
use semask_net::client::{ClientConfig, NetClient};
use semask_net::router::{RouterConfig, RouterHandler, ShardEngineHandler, ShardRouter};
use semask_net::server::{ServeServer, ServerConfig};
use semask_serve::api::{Priority, Request, ServeStatus};
use vecdb::ShardSpec;

const SHARDS: u32 = 2;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match boot::flag_value(&args, "--role").as_deref() {
        Some("shard") => serve_role(&args, |params, args| {
            let shard: u32 = boot::flag_parsed(args, "--shard", 0);
            let spec = ShardSpec::new(params.shards, shard).expect("valid shard");
            Arc::new(ShardEngineHandler::new(boot::build_engine(params), spec))
        }),
        Some("router") => serve_role(&args, |params, args| {
            let peers: Vec<String> = boot::flag_value(args, "--peers")
                .expect("--peers required for the router role")
                .split(',')
                .map(str::to_owned)
                .collect();
            let router =
                ShardRouter::new(boot::build_engine(params), peers, RouterConfig::default())
                    .expect("router topology");
            Arc::new(RouterHandler::new(Arc::new(router)))
        }),
        _ => drive(),
    }
}

/// Shared server scaffold for the child roles: build the handler, bind,
/// announce the port, park until the parent closes our stdin.
fn serve_role(
    args: &[String],
    handler: impl FnOnce(&NodeParams, &[String]) -> Arc<dyn semask_net::server::NetHandler>,
) {
    let params = boot::node_params(args);
    let handler = handler(&params, args);
    let mut server = ServeServer::bind(("127.0.0.1", 0), handler, ServerConfig::default())
        .expect("bind role server");
    println!("LISTENING {}", server.local_addr().port());
    use std::io::Write;
    std::io::stdout().flush().expect("flush");
    boot::wait_for_stdin_eof();
    server.shutdown();
}

struct Proc {
    child: Child,
    port: u16,
}

impl Proc {
    fn spawn(extra: &[String]) -> Self {
        let exe = std::env::current_exe().expect("own path");
        let params = NodeParams {
            shards: SHARDS,
            ..NodeParams::default()
        };
        let mut child = Command::new(exe)
            .args([
                "--city".to_owned(),
                params.city.to_string(),
                "--pois".to_owned(),
                params.pois.to_string(),
                "--seed".to_owned(),
                params.seed.to_string(),
                "--shards".to_owned(),
                params.shards.to_string(),
            ])
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn role process");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read port line");
        let port = line
            .trim()
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
            .parse()
            .expect("port");
        Self { child, port }
    }

    fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.port)
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        self.kill();
    }
}

fn drive() {
    println!("== semask-net: router + {SHARDS} shard processes on loopback ==\n");

    println!("spawning shard servers (each rebuilds the identical deterministic dataset)...");
    let mut shards: Vec<Proc> = (0..SHARDS)
        .map(|i| {
            Proc::spawn(&[
                "--role".into(),
                "shard".into(),
                "--shard".into(),
                i.to_string(),
            ])
        })
        .collect();
    for (i, s) in shards.iter().enumerate() {
        println!("  shard {i} listening on {}", s.addr());
    }

    let peers = shards.iter().map(Proc::addr).collect::<Vec<_>>().join(",");
    let router = Proc::spawn(&["--role".into(), "router".into(), "--peers".into(), peers]);
    println!("  router  listening on {}\n", router.addr());

    // The local reference: same params, same dataset, in one process.
    let engine = boot::build_engine(&NodeParams {
        shards: SHARDS,
        ..NodeParams::default()
    });
    let center = engine.prepared().city.center();
    let texts = [
        "quiet coffee with pastries",
        "live music and craft beer",
        "late night ramen",
        "a bookstore with a reading corner",
        "family friendly pizza",
        "rooftop cocktails at sunset",
        "vegan brunch outdoors",
        "tacos after midnight",
    ];
    let queries: Vec<SemaSkQuery> = texts
        .iter()
        .enumerate()
        .map(|(i, text)| {
            let km = 2.0 + 2.5 * (i % 4) as f64;
            SemaSkQuery::new(
                geotext::BoundingBox::from_center_km(center, km, km),
                (*text).to_owned(),
            )
        })
        .collect();

    let mut client =
        NetClient::connect(router.addr(), &ClientConfig::default()).expect("connect to router");

    println!("pipelining {} requests over one connection:", queries.len());
    let t0 = Instant::now();
    for (i, q) in queries.iter().enumerate() {
        client
            .send_request(&Request::new(i as u64, q.clone()).with_priority(Priority::Normal))
            .expect("send");
    }
    let mut matched = 0;
    for q in &queries {
        let response = client.recv_response().expect("receive");
        let outcome = response.outcome.as_ref().expect("outcome");
        let local = engine.query(q).expect("local reference");
        let bit_equal = outcome
            .pois
            .iter()
            .map(|p| (p.id.0, p.embed_score.to_bits()))
            .eq(local.pois.iter().map(|p| (p.id.0, p.embed_score.to_bits())));
        matched += usize::from(bit_equal);
        println!(
            "  id {:>2}  {:?}  {} hits  bit-identical-to-local: {}",
            response.id,
            response.status,
            outcome.pois.len(),
            bit_equal
        );
    }
    println!(
        "{matched}/{} answers bit-identical; wall clock {:.1} ms\n",
        queries.len(),
        t0.elapsed().as_secs_f64() * 1000.0
    );
    assert_eq!(
        matched,
        queries.len(),
        "wire answers must match the local engine"
    );

    println!("killing shard 1 mid-service...");
    shards[1].kill();
    let q = &queries[2];
    let response = client
        .request(&Request::new(99, q.clone()))
        .expect("degraded request still answers");
    match &response.status {
        ServeStatus::Degraded { message } => {
            let hits = response.outcome.as_ref().map_or(0, |o| o.pois.len());
            println!("  degraded as expected: {hits} partial hits ({message})");
        }
        other => println!("  unexpected status: {other} (expected Degraded)"),
    }
    assert!(
        matches!(response.status, ServeStatus::Degraded { .. }),
        "a dead shard must degrade, not fail"
    );

    println!("\ndone: partial answers are flagged, nothing hung, every process dies with us.");
}

//! Figure-3 reproduction: the SemaSK demo, as a CLI.
//!
//! The paper's demo UI has a suburb selector, a free-text query box, a
//! map with green (recommended) and blue (filtered-out) markers, and a
//! reason panel per POI. This example renders the same elements in the
//! terminal: an ASCII map of the query range, the marker legend, and the
//! per-POI reasons.
//!
//! ```sh
//! cargo run --release --example demo_cli
//! # or with your own query:
//! cargo run --release --example demo_cli -- "Downtown" "somewhere with live jazz and cocktails"
//! ```

use std::sync::Arc;

use geotext::BoundingBox;
use llm::SimLlm;
use semask::{prepare_city, SemaSkConfig, SemaSkEngine, SemaSkQuery, Variant};

const MAP_W: usize = 60;
const MAP_H: usize = 22;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let suburb = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "Downtown".to_owned());
    let text = args.get(2).cloned().unwrap_or_else(|| {
        "I am looking for a bar to watch football that also serves delicious chicken. \
         Do you have any recommendations?"
            .to_owned()
    });

    // Saint Louis, like the paper's demo walkthrough.
    let city = datagen::poi::generate_city(&datagen::CITIES[4], 1000, 99);
    let llm = Arc::new(SimLlm::new());
    let config = SemaSkConfig::default();
    let prepared = Arc::new(prepare_city(&city, &llm, &config).expect("prep"));

    // Suburb selector (the demo "limits the query range to the different
    // suburbs for simplicity").
    println!(
        "available suburbs: {}",
        prepared.geocoder.suburbs().join(", ")
    );
    let Some((center, half_km)) = prepared.geocoder.suburb_center(&suburb) else {
        eprintln!("unknown suburb `{suburb}`");
        std::process::exit(1);
    };
    let range = BoundingBox::from_center_km(center, half_km * 2.0, half_km * 2.0);
    println!(
        "\nquery range: {suburb}, {} ({:.0} km square)",
        city.city.name,
        half_km * 2.0
    );
    println!("query: {text}\n");

    let engine = SemaSkEngine::new(prepared, llm, config, Variant::Full);
    let outcome = engine.query_suburb(&suburb, &text).expect("query");
    // (query_suburb is equivalent to building the range by hand:)
    let _ = SemaSkQuery::new(range, text);

    // --- ASCII map ---
    let mut grid = vec![vec!['.'; MAP_W]; MAP_H];
    let to_cell = |lat: f64, lon: f64| -> (usize, usize) {
        let x = ((lon - range.min_lon) / (range.max_lon - range.min_lon) * (MAP_W as f64 - 1.0))
            .clamp(0.0, MAP_W as f64 - 1.0) as usize;
        let y = ((range.max_lat - lat) / (range.max_lat - range.min_lat) * (MAP_H as f64 - 1.0))
            .clamp(0.0, MAP_H as f64 - 1.0) as usize;
        (x, y)
    };
    let mut labels = Vec::new();
    for (n, poi) in outcome.pois.iter().enumerate() {
        let obj = &engine.prepared().dataset[poi.id];
        let (x, y) = to_cell(obj.location.lat, obj.location.lon);
        let marker = if poi.recommended {
            char::from_digit((n % 10) as u32, 10).unwrap_or('G')
        } else {
            'o'
        };
        grid[y][x] = marker;
        labels.push((marker, poi));
    }
    println!("┌{}┐", "─".repeat(MAP_W));
    for row in &grid {
        println!("│{}│", row.iter().collect::<String>());
    }
    println!("└{}┘", "─".repeat(MAP_W));
    println!("digits = recommended by the LLM (green)   o = fetched but filtered out (blue)\n");

    // --- top recommendation panel (left of the map in the real UI) ---
    if let Some(top) = outcome.pois.iter().find(|p| p.recommended) {
        let obj = &engine.prepared().dataset[top.id];
        println!("top recommendation: {}", top.name);
        println!(
            "  categories: {}",
            obj.attrs
                .get("categories")
                .map(|v| v.flatten())
                .unwrap_or_default()
        );
        println!(
            "  address:    {}, {}",
            obj.attrs.get_text("address").unwrap_or("?"),
            obj.attrs.get_text("suburb").unwrap_or("?")
        );
        println!(
            "  summary:    {}",
            obj.attrs.get_text("tip_summary").unwrap_or("-")
        );
        println!("  why:        {}\n", top.reason);
    } else {
        println!("the LLM recommended nothing for this query in this suburb\n");
    }

    // --- POI detail list (bottom of the real UI) ---
    println!("all markers:");
    for (marker, poi) in &labels {
        println!(
            "  [{marker}] {:<26} {}",
            poi.name,
            if poi.recommended {
                &poi.reason
            } else {
                "filtered out by the LLM"
            }
        );
    }
    println!(
        "\nlatency: filtering {:.1} ms (measured) + refinement {:.0} ms (simulated LLM)",
        outcome.latency.filtering_ms, outcome.latency.refinement_ms
    );

    // Export the map as GeoJSON (open on geojson.io to see the real map
    // view of Figure 3 with green/blue markers).
    let geojson = outcome.to_geojson(&engine.prepared().dataset);
    let path = std::env::temp_dir().join("semask_demo.geojson");
    if std::fs::write(&path, serde_json::to_string_pretty(&geojson).unwrap()).is_ok() {
        println!("map exported to {}", path.display());
    }
}

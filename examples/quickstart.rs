//! Quickstart: generate a city, run SemaSK's offline preparation, and
//! answer one semantics-aware spatial keyword query end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use geotext::BoundingBox;
use llm::SimLlm;
use semask::{prepare_city, SemaSkConfig, SemaSkEngine, SemaSkQuery, Variant};

fn main() {
    // 1. A geo-textual dataset. Here: 400 synthetic Nashville POIs with
    //    Yelp-shaped attributes (name, address, categories, hours, tips).
    let city = datagen::poi::generate_city(&datagen::CITIES[1], 400, 42);
    println!(
        "generated {} POIs in {}",
        city.dataset.len(),
        city.city.name
    );

    // 2. Offline data preparation: address completion, LLM tip
    //    summarization, embedding generation into the vector database.
    let llm = Arc::new(SimLlm::new());
    let config = SemaSkConfig::default();
    let prepared = Arc::new(prepare_city(&city, &llm, &config).expect("preparation"));
    println!(
        "prepared collection `{}` ({} vectors, {}-d)",
        prepared.collection_name,
        prepared.dataset.len(),
        config.embedder.dim
    );

    // 3. Online query processing: a natural-language query over a
    //    5 km x 5 km range around downtown.
    let engine = SemaSkEngine::new(prepared, Arc::clone(&llm), config, Variant::Full);
    let range = BoundingBox::from_center_km(datagen::CITIES[1].center(), 5.0, 5.0);
    let query = SemaSkQuery::new(
        range,
        "I am looking for a bar to watch football that also serves delicious chicken. \
         Do you have any recommendations?",
    );
    let outcome = engine.query(&query).expect("query");

    println!("\nquery: {}\n", query.text);
    println!(
        "filtering: {:.1} ms (measured) | refinement: {:.0} ms (simulated GPT-4o)",
        outcome.latency.filtering_ms, outcome.latency.refinement_ms
    );
    println!("\nrecommended (green markers):");
    for poi in outcome.pois.iter().filter(|p| p.recommended) {
        println!("  {:<28} {}", poi.name, poi.reason);
    }
    println!("\nfiltered out by the LLM (blue markers):");
    for poi in outcome.pois.iter().filter(|p| !p.recommended) {
        println!("  {:<28} embed score {:.3}", poi.name, poi.embed_score);
    }

    // 4. Cost accounting for the whole session.
    let log = llm.cost_log();
    println!(
        "\nLLM usage: {} calls, ${:.4} simulated spend",
        log.num_calls(),
        log.total_cost_usd()
    );
}
